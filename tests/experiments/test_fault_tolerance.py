"""Fault-injection tests: the engine must survive what we throw at it.

Every test here injects a real fault — a worker killed with ``os._exit``
mid-batch, a cache entry corrupted on disk, a filesystem that refuses
writes — and asserts both recovery (results identical to a clean serial
run) and telemetry (the robustness counters say what happened).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import faults
from repro.experiments.cache import ResultCache, simulation_key
from repro.experiments.context import (
    ENV_JOBS,
    ExperimentContext,
    ExperimentSettings,
)
from repro.experiments.figure8 import run_figure8

TINY = ExperimentSettings(
    trace_length=2_000,
    warmup=500,
    benchmarks=("adpcm", "susan"),
    thermal_grid=32,
)

PAIRS = [("adpcm", "Base"), ("adpcm", "TH"), ("susan", "Base"), ("susan", "TH")]


def _fields(result):
    return {
        "benchmark": result.benchmark,
        "config": result.config_name,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "cpi_stack": result.cpi_stack,
        "herding": result.herding,
        "caches": {
            name: (stats.accesses, stats.misses)
            for name, stats in result.cache_stats.items()
        },
    }


def _fault_context(tmp_path, monkeypatch, *, kills=0, raises=0, jobs=2):
    """A parallel context with fault tokens armed in a scratch directory."""
    token_dir = tmp_path / "fault-tokens"
    if kills:
        faults.arm_worker_kills(token_dir, kills)
    if raises:
        faults.arm_worker_raises(token_dir, raises)
    monkeypatch.setenv(faults.ENV_FAULT_DIR, str(token_dir))
    context = ExperimentContext(TINY, jobs=jobs, cache=None)
    context.retry_backoff_s = 0.01  # keep injected-crash tests fast
    return context, token_dir


class TestWorkerCrashRecovery:
    def test_worker_kill_mid_batch_recovers(self, tmp_path, monkeypatch):
        """One worker dies (os._exit, like an OOM kill); batch still completes."""
        context, token_dir = _fault_context(tmp_path, monkeypatch, kills=1)
        context.prefetch(PAIRS)
        assert faults.pending_tokens(token_dir) == []  # the kill happened
        assert context.stats.pool_restarts >= 1
        assert context.stats.simulated == len(PAIRS)

        serial = ExperimentContext(TINY, jobs=1, cache=None)
        for pair in PAIRS:
            assert _fields(context.run(*pair)) == _fields(serial.run(*pair)), pair

    def test_report_identical_to_serial_after_worker_kill(
        self, tmp_path, monkeypatch
    ):
        """Figure-level output is byte-identical to a serial run despite a crash."""
        serial_text = run_figure8(ExperimentContext(TINY, jobs=1, cache=None)).format()

        context, token_dir = _fault_context(tmp_path, monkeypatch, kills=1)
        faulted_text = run_figure8(context).format()
        assert faults.pending_tokens(token_dir) == []
        assert context.stats.pool_restarts >= 1
        assert faulted_text == serial_text

    def test_persistent_crashes_degrade_to_serial(self, tmp_path, monkeypatch):
        """A pool that breaks on every restart ends in serial execution."""
        context, _ = _fault_context(tmp_path, monkeypatch, kills=64)
        context.max_pool_restarts = 2
        with pytest.warns(RuntimeWarning, match="serially"):
            context.prefetch(PAIRS)
        assert context.stats.serial_fallbacks >= 1
        assert context.stats.pool_restarts == 2
        assert context.stats.simulated == len(PAIRS)

        serial = ExperimentContext(TINY, jobs=1, cache=None)
        for pair in PAIRS:
            assert _fields(context.run(*pair)) == _fields(serial.run(*pair)), pair

    def test_in_task_exception_retried_on_live_pool(self, tmp_path, monkeypatch):
        """A raising task is retried without restarting the healthy pool."""
        context, token_dir = _fault_context(tmp_path, monkeypatch, raises=1)
        context.prefetch(PAIRS)
        assert faults.pending_tokens(token_dir) == []
        assert context.stats.task_retries >= 1
        assert context.stats.pool_restarts == 0
        assert context.stats.simulated == len(PAIRS)
        assert any(e["event"] == "task_error" for e in context.stats.events)

    def test_repeatedly_raising_task_falls_back_to_serial(
        self, tmp_path, monkeypatch
    ):
        """More raise faults than retry budget → serial fallback, still correct."""
        context, _ = _fault_context(tmp_path, monkeypatch, raises=64, jobs=2)
        context.max_task_attempts = 2
        context.prefetch(PAIRS)
        assert context.stats.serial_fallbacks >= 1
        assert context.stats.simulated == len(PAIRS)
        serial = ExperimentContext(TINY, jobs=1, cache=None)
        for pair in PAIRS:
            assert _fields(context.run(*pair)) == _fields(serial.run(*pair)), pair

    def test_completed_results_survive_pool_breakage(self, tmp_path, monkeypatch):
        """Results finished before the crash are kept, with their stores cached."""
        cache = ResultCache(tmp_path / "cache")
        token_dir = tmp_path / "fault-tokens"
        faults.arm_worker_kills(token_dir, 1)
        monkeypatch.setenv(faults.ENV_FAULT_DIR, str(token_dir))
        context = ExperimentContext(TINY, jobs=2, cache=cache)
        context.retry_backoff_s = 0.01
        context.prefetch(PAIRS)
        assert context.stats.simulated == len(PAIRS)
        assert len(cache.entries()) == len(PAIRS)

    def test_telemetry_in_stats_dict(self, tmp_path, monkeypatch):
        context, _ = _fault_context(tmp_path, monkeypatch, kills=1)
        context.prefetch(PAIRS)
        payload = context.stats.as_dict()
        assert payload["pool_restarts"] >= 1
        assert payload["simulated"] == len(PAIRS)
        assert "simulate" in payload["stage_seconds"]
        assert any(e["event"] == "pool_restart" for e in context.stats.events)

    def test_no_injection_without_env(self, tmp_path):
        """The fault point is inert when REPRO_FAULT_DIR is unset."""
        faults.arm_worker_kills(tmp_path / "unused", 1)
        context = ExperimentContext(TINY, jobs=2, cache=None)
        context.prefetch(PAIRS)
        assert context.stats.pool_restarts == 0
        assert context.stats.serial_fallbacks == 0


class TestCacheFaults:
    def _primed(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        ExperimentContext(TINY, jobs=1, cache=cache).run("adpcm", "Base")
        (entry,) = cache.entries()
        return cache, entry

    def test_garbage_entry_deleted_and_recomputed(self, tmp_path):
        _, entry = self._primed(tmp_path)
        faults.corrupt_entry(entry, "garbage")
        fresh = ResultCache(tmp_path / "cache")
        context = ExperimentContext(TINY, jobs=1, cache=fresh)
        context.run("adpcm", "Base")
        assert context.stats.simulated == 1
        assert fresh.evictions == 1
        # The recomputed result replaced the damaged file with a good one.
        warm = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path / "cache"))
        warm.run("adpcm", "Base")
        assert warm.stats.disk_hits == 1
        assert warm.stats.simulated == 0

    def test_truncated_entry_deleted_and_recomputed(self, tmp_path):
        _, entry = self._primed(tmp_path)
        faults.corrupt_entry(entry, "truncate")
        fresh = ResultCache(tmp_path / "cache")
        context = ExperimentContext(TINY, jobs=1, cache=fresh)
        context.run("adpcm", "Base")
        assert context.stats.simulated == 1
        assert fresh.evictions == 1

    def test_type_mismatched_entry_deleted(self, tmp_path):
        """A wrong-type payload is evicted, not left to re-miss forever."""
        cache = ResultCache(tmp_path / "cache")
        key = simulation_key(
            "adpcm", ExperimentContext(TINY, cache=None).configs["Base"],
            TINY.trace_length, TINY.warmup,
        )
        cache.store(key, {"not": "a SimulationResult"})
        assert cache.load(key) is None
        assert cache.evictions == 1
        assert not cache._path(key).exists()  # second load is a clean miss
        assert cache.load(key) is None
        assert cache.evictions == 1

    def test_full_disk_degrades_to_cacheless(self, tmp_path):
        root = tmp_path / "cache"
        cache = ResultCache(root)
        with faults.full_disk(root):
            context = ExperimentContext(TINY, jobs=1, cache=cache)
            result = context.run("adpcm", "Base")
        assert context.stats.simulated == 1
        assert cache.stores == 0
        assert cache.entries() == []
        assert cache.tmp_files() == []  # no leaked scratch files either
        serial = ExperimentContext(TINY, jobs=1, cache=None)
        assert _fields(result) == _fields(serial.run("adpcm", "Base"))

    def test_read_only_filesystem_degrades_to_cacheless(self, tmp_path):
        root = tmp_path / "cache"
        cache = ResultCache(root)
        with faults.read_only_filesystem(root):
            context = ExperimentContext(TINY, jobs=1, cache=cache)
            result = context.run("adpcm", "Base")
        assert context.stats.simulated == 1
        assert cache.stores == 0
        serial = ExperimentContext(TINY, jobs=1, cache=None)
        assert _fields(result) == _fields(serial.run("adpcm", "Base"))

    def test_read_only_filesystem_still_serves_hits(self, tmp_path):
        cache, _ = self._primed(tmp_path)
        with faults.read_only_filesystem(tmp_path / "cache"):
            warm = ExperimentContext(
                TINY, jobs=1, cache=ResultCache(tmp_path / "cache")
            )
            warm.run("adpcm", "Base")
        assert warm.stats.simulated == 0
        assert warm.stats.disk_hits == 1


class TestTmpFileHygiene:
    def test_dead_writer_tmp_swept(self, tmp_path):
        cache = ResultCache(tmp_path)
        bucket = cache.version_dir / "ab"
        bucket.mkdir(parents=True)
        dead = bucket / f"{'a' * 64}.pkl.gz.99999999.tmp"  # pid can't exist
        dead.write_bytes(b"partial write")
        junk = bucket / "junk.tmp"  # unparseable writer pid: abandoned
        junk.write_bytes(b"?")
        live = bucket / f"{'b' * 64}.pkl.gz.{os.getpid()}.tmp"  # us, fresh
        live.write_bytes(b"in flight")
        assert cache.sweep_tmp() == 2
        assert not dead.exists()
        assert not junk.exists()
        assert live.exists()

    def test_old_tmp_swept_even_with_live_pid(self, tmp_path):
        cache = ResultCache(tmp_path)
        bucket = cache.version_dir / "cd"
        bucket.mkdir(parents=True)
        stale = bucket / f"{'c' * 64}.pkl.gz.{os.getpid()}.tmp"
        stale.write_bytes(b"ancient")
        assert cache.sweep_tmp(max_age_s=0.0) == 1

    def test_cli_cache_info_reports_sweep(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ResultCache(tmp_path)
        bucket = cache.version_dir / "ef"
        bucket.mkdir(parents=True)
        (bucket / f"{'e' * 64}.pkl.gz.99999999.tmp").write_bytes(b"x")
        assert main(["cache", "info"]) == 0
        assert "stale temp files swept: 1" in capsys.readouterr().out
        assert cache.tmp_files() == []

    def test_cli_cache_clear_reports_tmp_count(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        cache = ResultCache(tmp_path)
        bucket = cache.version_dir / "01"
        bucket.mkdir(parents=True)
        (bucket / f"{'0' * 64}.pkl.gz.99999999.tmp").write_bytes(b"x")
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "1 temp file(s)" in out
        assert not cache.root.exists()


class TestJobsResolution:
    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "3")
        assert ExperimentContext(TINY, jobs=7, cache=None).jobs == 7

    def test_invalid_env_warns_and_names_value(self, monkeypatch):
        monkeypatch.setenv(ENV_JOBS, "fourr")
        with pytest.warns(RuntimeWarning, match="fourr"):
            context = ExperimentContext(TINY, cache=None)
        assert context.jobs >= 1

    def test_valid_env_does_not_warn(self, monkeypatch, recwarn):
        monkeypatch.setenv(ENV_JOBS, "2")
        assert ExperimentContext(TINY, cache=None).jobs == 2
        assert not [w for w in recwarn if issubclass(w.category, RuntimeWarning)]

    def test_bounds_clamped_to_at_least_one(self, monkeypatch):
        assert ExperimentContext(TINY, jobs=-5, cache=None).jobs == 1
        assert ExperimentContext(TINY, jobs=0, cache=None).jobs == 1
        monkeypatch.setenv(ENV_JOBS, "0")
        assert ExperimentContext(TINY, cache=None).jobs == 1
        monkeypatch.setenv(ENV_JOBS, "-3")
        assert ExperimentContext(TINY, cache=None).jobs == 1


class TestValidateSuiteDuplicates:
    def test_duplicate_names_both_reported(self):
        from repro.isa.builder import TraceBuilder
        from repro.workloads.validation import validate_suite

        def bad_trace():
            # All-wide ALU results violate every class's low-width band.
            builder = TraceBuilder(name="twin")
            for _ in range(32):
                builder.alu(1, 1 << 40)
            return builder.build(benchmark_class="SPECint2000")

        report = validate_suite([bad_trace(), bad_trace()])
        assert set(report) == {"twin", "twin#2"}
        assert any("duplicate trace name" in line for line in report["twin#2"])
        assert not any("duplicate" in line for line in report["twin"])
