"""Tests for the leakage-feedback experiment."""

import pytest

from repro.experiments import ExperimentContext, ExperimentSettings
from repro.experiments.leakage import CONFIG_LABELS, run_leakage_feedback

TINY = ExperimentSettings(
    trace_length=5_000,
    warmup=1_500,
    benchmarks=("mpeg2",),
    thermal_grid=36,
)


@pytest.fixture(scope="module")
def result():
    return run_leakage_feedback(ExperimentContext(TINY))


class TestLeakageFeedback:
    def test_all_configs(self, result):
        assert set(result.outcomes) == set(CONFIG_LABELS)

    def test_amplifications_finite_and_positive(self, result):
        for fixed, coupled, amp in result.outcomes.values():
            assert fixed > 300.0
            assert coupled > 300.0
            assert 0.1 < amp < 10.0

    def test_no_herding_amplifies_most(self, result):
        """The hottest design pays the largest leakage tax."""
        assert result.outcomes["3D-noTH"][2] > result.outcomes["3D"][2]
        assert result.outcomes["3D-noTH"][2] > result.outcomes["Base"][2]

    def test_coupling_raises_hot_designs(self, result):
        fixed, coupled, amp = result.outcomes["3D-noTH"]
        if amp > 1.05:
            assert coupled > fixed

    def test_format(self, result):
        text = result.format()
        assert "leakage-temperature feedback" in text
        assert "headroom" in text
