"""The parallel thermal solve engine: fan-out equivalence and faults.

The engine ships geometry groups to worker processes (assemble +
factorize + solve per group, temperatures back), so these tests pin the
properties that make that safe: results byte-identical to the serial
path, the inline gate for small dispatches, within-call deduplication,
claim coordination, and recovery from thermal workers that die or hang
mid-batch.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.experiments import faults
from repro.experiments.cache import ResultCache
from repro.experiments.context import (
    CORE_COUNT,
    ExperimentContext,
    ExperimentSettings,
    THERMAL_PARALLEL_MIN_GROUPS,
)
from repro.experiments.sensitivity import run_sensitivity
from repro.power.model import StackKind
from repro.thermal.solver import clear_factorization_cache

TINY = ExperimentSettings(
    trace_length=2_000,
    warmup=500,
    benchmarks=("adpcm", "susan"),
    thermal_grid=32,
)

#: Both stacks, both benchmarks — the smallest grid that exercises more
#: than one packaging geometry in a single dispatch.
PAIRS = [("adpcm", "Base"), ("adpcm", "3D"), ("susan", "Base"), ("susan", "3D")]

#: Hard wall-clock budget for recovery tests: far above the configured
#: deadlines, far below "blocked forever".
RECOVERY_BUDGET_S = 60.0


def _same_thermal(a, b) -> bool:
    return (
        a.block_peak == b.block_peak
        and a.block_mean == b.block_mean
        and len(a.layer_temps) == len(b.layer_temps)
        and all(np.array_equal(x, y) for x, y in zip(a.layer_temps, b.layer_temps))
    )


def _parallel_context(jobs: int = 2, **overrides) -> ExperimentContext:
    context = ExperimentContext(TINY, jobs=jobs, cache=None)
    # Force the pool even for dispatches below the inline gate, so the
    # worker path is what actually runs.
    context.thermal_parallel_min_groups = 1
    context.retry_backoff_s = 0.01
    for name, value in overrides.items():
        setattr(context, name, value)
    return context


class TestParallelEquivalence:
    def test_worker_path_matches_serial(self):
        """Pool-solved thermal maps are identical to in-process ones."""
        # Workers fork from this process: empty the process-wide LRU so
        # they factorize cold even when earlier tests warmed it.
        clear_factorization_cache()
        parallel = _parallel_context(jobs=2)
        serial = ExperimentContext(TINY, jobs=1, cache=None)
        fanned = parallel.thermal_many(PAIRS)
        inline = serial.thermal_many(PAIRS)
        assert parallel.stats.thermal_worker_groups >= 1
        assert parallel.stats.thermal_worker_factorizations >= 1
        for pair in PAIRS:
            assert _same_thermal(fanned[pair], inline[pair]), pair

    def test_sensitivity_fanout_matches_serial(self):
        """The sweep that motivated the engine: 10 geometries, one dispatch."""
        parallel = ExperimentContext(TINY, jobs=4, cache=None)
        serial = ExperimentContext(TINY, jobs=1, cache=None)
        fanned = run_sensitivity(parallel)
        inline = run_sensitivity(serial)
        # Enough distinct geometries to clear the inline gate on its own.
        assert parallel.stats.thermal_worker_groups >= THERMAL_PARALLEL_MIN_GROUPS
        assert fanned.nominal_peak_k == inline.nominal_peak_k
        assert [(p.parameter, p.value, p.peak_k) for p in fanned.points] == \
            [(p.parameter, p.value, p.peak_k) for p in inline.points]


class TestDispatchPolicy:
    def test_few_geometries_stay_inline(self):
        """Below the gate the parent solves in-process, keeping its LRU."""
        context = ExperimentContext(TINY, jobs=4, cache=None)
        context.thermal_many(PAIRS)  # two stacks -> two geometry groups
        assert context.stats.thermal_groups >= 2
        assert context.stats.thermal_worker_groups == 0
        groups = [e for e in context.stats.events if e["event"] == "thermal_group"]
        assert groups and all(e["where"] == "inline" for e in groups)

    def test_group_events_carry_geometry_detail(self):
        context = _parallel_context(jobs=2)
        context.thermal_many(PAIRS)
        groups = [e for e in context.stats.events if e["event"] == "thermal_group"]
        assert groups
        for event in groups:
            assert event["where"] in ("inline", "worker")
            assert event["batches"] >= 1
            assert event["cells"] > 0
            assert isinstance(event["geometry"], str) and event["geometry"]

    def test_duplicate_requests_solve_once(self):
        """Identical requests in one dispatch share a single solve."""
        context = ExperimentContext(TINY, jobs=1, cache=None)
        breakdown = context.power("adpcm", "Base")
        request = ([breakdown] * CORE_COUNT, 1.0)
        first, second = context.thermal_batch([request, request],
                                              StackKind.PLANAR_2D)
        assert first is second  # one unit scattered to both positions
        assert context.stats.thermal_solved == 2
        groups = [e for e in context.stats.events if e["event"] == "thermal_group"]
        assert len(groups) == 1 and groups[0]["batches"] == 1


class TestThermalWorkerFaults:
    def _token_context(self, tmp_path, monkeypatch, **overrides):
        token_dir = tmp_path / "fault-tokens"
        monkeypatch.setenv(faults.ENV_FAULT_DIR, str(token_dir))
        return _parallel_context(jobs=2, **overrides), token_dir

    def test_thermal_kill_mid_batch_recovers(self, tmp_path, monkeypatch):
        """A thermal worker dying mid-batch costs a retry, not the result."""
        context, token_dir = self._token_context(tmp_path, monkeypatch)
        faults.arm_thermal_worker_kills(token_dir, 1)
        fanned = context.thermal_many(PAIRS)
        assert faults.pending_tokens(token_dir) == []  # the kill happened
        assert context.stats.pool_restarts >= 1
        clean = ExperimentContext(TINY, jobs=1, cache=None)
        inline = clean.thermal_many(PAIRS)
        for pair in PAIRS:
            assert _same_thermal(fanned[pair], inline[pair]), pair

    def test_thermal_hang_reaped_by_deadline(self, tmp_path, monkeypatch):
        """A wedged thermal worker is reaped by the thermal deadline."""
        context, token_dir = self._token_context(tmp_path, monkeypatch,
                                                 thermal_timeout_s=1.5)
        faults.arm_thermal_worker_hangs(token_dir, 1)
        start = time.monotonic()
        fanned = context.thermal_many(PAIRS)
        assert time.monotonic() - start < RECOVERY_BUDGET_S
        assert faults.pending_tokens(token_dir) == []
        assert context.stats.task_timeouts >= 1
        clean = ExperimentContext(TINY, jobs=1, cache=None)
        inline = clean.thermal_many(PAIRS)
        for pair in PAIRS:
            assert _same_thermal(fanned[pair], inline[pair]), pair

    def test_thermal_tokens_ignored_by_simulation_workers(
        self, tmp_path, monkeypatch
    ):
        """Thermal-only tokens never fire on a simulation task."""
        context, token_dir = self._token_context(tmp_path, monkeypatch)
        tokens = faults.arm_thermal_worker_kills(token_dir, 1)
        context.prefetch(PAIRS)  # simulation-only fan-out
        assert context.stats.pool_restarts == 0
        assert faults.pending_tokens(token_dir) == tokens
        for token in tokens:
            token.unlink()


class TestClaimCoordination:
    def test_unclaimable_key_is_stolen_and_solved(self, tmp_path, monkeypatch):
        """A key whose claim cannot be won still resolves in this process."""
        cache = ResultCache(tmp_path / "cache")
        context = ExperimentContext(TINY, jobs=1, cache=cache)
        context.claim_wait_s = 5.0
        context.claim_poll_s = 0.01
        context.power("adpcm", "Base")  # simulation claims settle first
        refused = []
        original = cache.try_claim

        def try_claim_once(key):
            if not refused:
                refused.append(key)
                return False  # lost the race; holder then vanishes
            return original(key)

        monkeypatch.setattr(cache, "try_claim", try_claim_once)
        result = context.thermal("adpcm", "Base")
        assert refused  # the refusal path actually ran
        assert context.stats.claim_waits == 1
        assert context.stats.claim_takeovers == 1
        assert context.stats.claim_steals == 1
        clean = ExperimentContext(TINY, jobs=1, cache=None)
        assert _same_thermal(result, clean.thermal("adpcm", "Base"))

    def test_warm_rerun_hits_disk_with_zero_solves(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = ExperimentContext(TINY, jobs=1, cache=ResultCache(cache_dir))
        cold.thermal_many(PAIRS)
        assert cold.stats.thermal_solved > 0
        warm = ExperimentContext(TINY, jobs=1, cache=ResultCache(cache_dir))
        warm.thermal_many(PAIRS)
        assert warm.stats.thermal_solved == 0
        assert warm.stats.thermal_disk_hits > 0
        assert "thermal" not in warm.stats.stage_seconds


class TestStagesAndStats:
    def test_stage_seconds_cover_the_whole_pipeline(self):
        context = ExperimentContext(TINY, jobs=1, cache=None)
        context.thermal_many([("adpcm", "Base")])
        for stage in ("generate", "compile", "simulate", "thermal"):
            assert stage in context.stats.stage_seconds, stage
            assert context.stats.stage_seconds[stage] >= 0.0

    def test_as_dict_surfaces_thermal_engine_counters(self):
        payload = ExperimentContext(TINY, cache=None).stats.as_dict()
        for counter in ("thermal_groups", "thermal_worker_groups",
                        "thermal_worker_factorizations", "factorizations",
                        "factorization_cache_hits"):
            assert counter in payload, counter

    def test_worker_events_scoped_to_a_batch(self):
        context = _parallel_context(jobs=2)
        context.thermal_many(PAIRS)
        groups = [e for e in context.stats.events
                  if e["event"] == "thermal_group" and e["where"] == "worker"]
        assert groups
        for event in groups:
            assert event["run_id"] == context.stats.run_id
            assert event["batch_id"].startswith("b")
