"""Tests for the sensitivity and stacking-order analyses."""

import pytest

from repro.experiments import ExperimentContext, ExperimentSettings
from repro.experiments.sensitivity import run_sensitivity
from repro.experiments.stacking_order import run_stacking_order

TINY = ExperimentSettings(
    trace_length=5_000,
    warmup=1_500,
    benchmarks=("mpeg2",),
    thermal_grid=36,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(TINY)


class TestStackingOrder:
    @pytest.fixture(scope="class")
    def result(self, context):
        return run_stacking_order(context)

    def test_orientation_penalty_positive(self, result):
        """Herded power at the bottom of the stack must run hotter."""
        assert result.penalty_k > 0

    def test_magnitudes_sane(self, result):
        assert 330.0 < result.herded_peak_k < 450.0
        assert result.penalty_k < 30.0

    def test_format(self, result):
        assert "stacking-order" in result.format()


class TestSensitivity:
    @pytest.fixture(scope="class")
    def result(self, context):
        return run_sensitivity(context)

    def test_all_parameters_swept(self, result):
        grouped = result.by_parameter()
        assert set(grouped) == {"convection K/W", "TIM W/mK", "via copper fraction"}
        assert all(len(points) == 4 for points in grouped.values())

    def test_worse_sink_is_hotter(self, result):
        points = result.by_parameter()["convection K/W"]
        temps = [p.peak_k for p in sorted(points, key=lambda p: p.value)]
        assert temps == sorted(temps)

    def test_better_tim_is_cooler(self, result):
        points = result.by_parameter()["TIM W/mK"]
        temps = [p.peak_k for p in sorted(points, key=lambda p: p.value)]
        assert temps == sorted(temps, reverse=True)

    def test_more_copper_is_cooler(self, result):
        points = result.by_parameter()["via copper fraction"]
        temps = [p.peak_k for p in sorted(points, key=lambda p: p.value)]
        assert temps == sorted(temps, reverse=True)

    def test_tim_dominates_via_fill(self, result):
        """The paper's phase-change TIM assumption carries the most weight."""
        assert result.spread("TIM W/mK") > result.spread("via copper fraction")

    def test_format(self, result):
        assert "sensitivity" in result.format()
