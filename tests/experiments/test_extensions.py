"""Tests for the extension experiments (DVFS, roadmap, report)."""

import pytest

from repro.experiments import ExperimentContext, ExperimentSettings
from repro.experiments.dvfs import run_dvfs
from repro.experiments.report import generate_report
from repro.experiments.roadmap import STAGES, run_roadmap

TINY = ExperimentSettings(
    trace_length=5_000,
    warmup=1_500,
    benchmarks=("mpeg2", "mcf"),
    thermal_grid=36,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(TINY)


class TestDVFS:
    @pytest.fixture(scope="class")
    def result(self, context):
        return run_dvfs(context, steps=3)

    def test_endpoints(self, result, context):
        assert result.points[0].clock_ghz == pytest.approx(
            context.configs["Base"].clock_ghz
        )
        assert result.points[-1].clock_ghz == pytest.approx(
            context.configs["3D"].clock_ghz
        )

    def test_power_monotone_in_frequency(self, result):
        watts = [p.chip_watts for p in result.points]
        assert watts == sorted(watts)

    def test_temperature_monotone_in_frequency(self, result):
        peaks = [p.peak_k for p in result.points]
        assert peaks == sorted(peaks)

    def test_performance_monotone(self, result):
        perf = [p.ipns for p in result.points]
        assert perf == sorted(perf)

    def test_envelope_point_beats_planar(self, result):
        best = result.best_within_planar_envelope()
        assert best is not None
        assert best.ipns > result.planar_ipns
        assert best.peak_k <= result.planar_peak_k

    def test_rejects_bad_steps(self, context):
        with pytest.raises(ValueError):
            run_dvfs(context, steps=1)

    def test_format(self, result):
        assert "DVFS" in result.format()


class TestRoadmap:
    @pytest.fixture(scope="class")
    def result(self, context):
        return run_roadmap(context)

    def test_all_stages(self, result):
        assert set(result.speedup) == set(STAGES)

    def test_planar_is_unity(self, result):
        assert result.speedup["planar"] == pytest.approx(1.0)

    def test_stages_monotone(self, result):
        assert (result.speedup["planar"]
                <= result.speedup["stacked-l2"] + 1e-9)
        assert (result.speedup["stacked-l2"]
                <= result.speedup["stacked-cache+"] + 1e-9)
        assert (result.speedup["stacked-cache+"]
                < result.speedup["3d-cores"])

    def test_full_3d_captures_most_benefit(self, result):
        """Section 2.2: stacked caches alone leave most of the gain."""
        cache_gain = result.speedup["stacked-cache+"] - 1.0
        full_gain = result.speedup["3d-cores"] - 1.0
        assert full_gain > 2 * cache_gain

    def test_format(self, result):
        assert "roadmap" in result.format()


class TestReport:
    def test_generates_markdown(self, context):
        text = generate_report(context)
        assert text.startswith("# Thermal Herding reproduction")
        for heading in ("Table 2", "Figure 8", "Figure 9", "Figure 10",
                        "iso-power", "width prediction", "DVFS", "roadmap"):
            assert heading in text
        assert "| quantity | paper | this repo |" in text
