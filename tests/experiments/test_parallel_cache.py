"""Parallel-vs-serial equivalence and on-disk cache round-trip tests."""

from __future__ import annotations

import dataclasses
import gzip

import pytest

from repro.cpu.config import baseline_config
from repro.experiments.cache import (
    CACHE_SCHEMA_VERSION,
    ResultCache,
    simulation_key,
)
from repro.experiments.context import ExperimentContext, ExperimentSettings

TINY = ExperimentSettings(
    trace_length=2_000,
    warmup=500,
    benchmarks=("adpcm", "susan"),
    thermal_grid=32,
)

PAIRS = [("adpcm", "Base"), ("adpcm", "TH"), ("susan", "Base"), ("susan", "TH")]


def _fields(result):
    """Every value-bearing field of a SimulationResult, comparably typed."""
    return {
        "benchmark": result.benchmark,
        "config": result.config_name,
        "clock": result.clock_ghz,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "stalls": dataclasses.asdict(result.stalls),
        "cpi_stack": result.cpi_stack,
        "herding": result.herding,
        "caches": {
            name: (stats.accesses, stats.misses)
            for name, stats in result.cache_stats.items()
        },
        "branches": dataclasses.asdict(result.branch_stats),
        "activity": {
            name: (m.total, m.top_only, tuple(m.per_die))
            for name, m in result.activity.modules().items()
        },
    }


class TestParallelEquivalence:
    def test_parallel_matches_serial(self):
        serial = ExperimentContext(TINY, jobs=1, cache=None)
        parallel = ExperimentContext(TINY, jobs=2, cache=None)
        parallel.prefetch(PAIRS)
        assert parallel.stats.simulated == len(PAIRS)
        for pair in PAIRS:
            assert _fields(parallel.run(*pair)) == _fields(serial.run(*pair)), pair
        assert serial.stats.simulated == len(PAIRS)

    def test_run_many_returns_all_pairs(self):
        context = ExperimentContext(TINY, jobs=2, cache=None)
        results = context.run_many(PAIRS)
        assert set(results) == set(PAIRS)
        assert results[("adpcm", "Base")] is context.run("adpcm", "Base")

    def test_jobs_resolution_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert ExperimentContext(TINY, cache=None).jobs == 3
        monkeypatch.setenv("REPRO_JOBS", "not-a-number")
        with pytest.warns(RuntimeWarning, match="not-a-number"):
            assert ExperimentContext(TINY, cache=None).jobs >= 1
        assert ExperimentContext(TINY, jobs=7, cache=None).jobs == 7


class TestResultCache:
    def test_round_trip_warm_hit(self, tmp_path):
        cold = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        first = cold.run("adpcm", "Base")
        assert cold.stats.simulated == 1

        warm = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        second = warm.run("adpcm", "Base")
        assert warm.stats.simulated == 0
        assert warm.stats.disk_hits == 1
        assert _fields(first) == _fields(second)

    def test_prefetch_warm_runs_nothing(self, tmp_path):
        ExperimentContext(TINY, jobs=2, cache=ResultCache(tmp_path)).prefetch(PAIRS)
        warm = ExperimentContext(TINY, jobs=2, cache=ResultCache(tmp_path))
        warm.prefetch(PAIRS)
        assert warm.stats.simulated == 0
        assert warm.stats.disk_hits == len(PAIRS)

    def test_key_changes_with_config_and_fidelity(self):
        config = baseline_config()
        key = simulation_key("adpcm", config, 2_000, 500)
        assert key == simulation_key("adpcm", config, 2_000, 500)
        changed = dataclasses.replace(config, rob_size=config.rob_size + 1)
        assert simulation_key("adpcm", changed, 2_000, 500) != key
        assert simulation_key("adpcm", config, 4_000, 500) != key
        assert simulation_key("adpcm", config, 2_000, 600) != key
        assert simulation_key("susan", config, 2_000, 500) != key

    def test_changed_key_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        context = ExperimentContext(TINY, jobs=1, cache=cache)
        context.run("adpcm", "Base")

        longer = dataclasses.replace(TINY, trace_length=3_000)
        other = ExperimentContext(longer, jobs=1, cache=ResultCache(tmp_path))
        other.run("adpcm", "Base")
        assert other.stats.simulated == 1
        assert other.stats.disk_hits == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        context = ExperimentContext(TINY, jobs=1, cache=cache)
        context.run("adpcm", "Base")
        (entry,) = cache.entries()
        entry.write_bytes(b"not a gzip pickle")

        recovered = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        recovered.run("adpcm", "Base")
        assert recovered.stats.simulated == 1
        assert recovered.stats.disk_hits == 0

    def test_truncated_gzip_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        ExperimentContext(TINY, jobs=1, cache=cache).run("adpcm", "Base")
        (entry,) = cache.entries()
        entry.write_bytes(gzip.compress(b"\x80\x04")[:-1])
        assert ResultCache(tmp_path).load(entry.name.split(".")[0]) is None

    def test_clear_and_describe(self, tmp_path):
        cache = ResultCache(tmp_path)
        ExperimentContext(TINY, jobs=1, cache=cache).prefetch(PAIRS[:2])
        assert len(cache.entries()) == 2
        assert f"v{CACHE_SCHEMA_VERSION}" in cache.describe()
        assert cache.clear() == 2
        assert cache.entries() == []

    def test_stale_version_pruned(self, tmp_path):
        stale = tmp_path / "v0" / "ab"
        stale.mkdir(parents=True)
        (stale / "abcd.pkl.gz").write_bytes(b"old")
        cache = ResultCache(tmp_path)
        assert [p.name for p in cache.stale_version_dirs()] == ["v0"]
        assert cache.prune_stale() == 1
        assert cache.stale_version_dirs() == []

    def test_env_disable(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert ResultCache.from_env() is None
        monkeypatch.setenv("REPRO_CACHE", "1")
        assert ResultCache.from_env() is not None

    def test_run_config_cached(self, tmp_path):
        config = dataclasses.replace(baseline_config(), clock_ghz=3.0)
        first = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        a = first.run_config("adpcm", config)
        assert a is first.run_config("adpcm", config)
        assert first.stats.simulated == 1

        warm = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        b = warm.run_config("adpcm", config)
        assert warm.stats.simulated == 0
        assert _fields(a) == _fields(b)


class TestBatchedThermal:
    def test_thermal_many_matches_single(self, tmp_path):
        context = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        pairs = [("adpcm", "Base"), ("susan", "Base"), ("adpcm", "3D")]
        batched = context.thermal_many(pairs)

        fresh = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        for pair in pairs:
            single = fresh.thermal(*pair)
            assert single.peak_temperature == pytest.approx(
                batched[pair].peak_temperature, rel=1e-12
            )
            assert single.block_peak == pytest.approx(batched[pair].block_peak)

    def test_thermal_memoized(self):
        context = ExperimentContext(TINY, jobs=1, cache=None)
        assert context.thermal("adpcm", "Base") is context.thermal("adpcm", "Base")
