"""Tests for the per-figure experiment harnesses (small settings)."""

import pytest

from repro.experiments import (
    ExperimentContext,
    ExperimentSettings,
    run_figure8,
    run_figure9,
    run_figure10,
    run_power_density,
    run_table2,
    run_width_stats,
)

SMALL = ExperimentSettings(
    trace_length=6_000,
    warmup=2_000,
    benchmarks=("mpeg2", "yacr2", "susan", "mcf"),
    thermal_grid=40,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(SMALL)


class TestContext:
    def test_trace_cached(self, context):
        assert context.trace("mpeg2") is context.trace("mpeg2")

    def test_run_cached(self, context):
        assert context.run("mpeg2", "Base") is context.run("mpeg2", "Base")

    def test_unknown_config(self, context):
        with pytest.raises(KeyError):
            context.run("mpeg2", "Turbo")

    def test_configs_include_no_th_variant(self, context):
        assert "3D-noTH" in context.configs
        assert not context.configs["3D-noTH"].thermal_herding
        assert context.configs["3D"].thermal_herding

    def test_power_model_calibrated_once(self, context):
        assert context.power_model() is context.power_model()


class TestTable2:
    def test_headline_numbers(self):
        result = run_table2()
        assert result.wakeup_improvement == pytest.approx(0.32, abs=0.04)
        assert result.alu_bypass_improvement == pytest.approx(0.36, abs=0.04)
        assert 0.40 <= result.frequency_gain <= 0.55

    def test_format(self):
        text = run_table2().format()
        assert "Table 2" in text
        assert "GHz" in text


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self, context):
        return run_figure8(context)

    def test_all_benchmarks_covered(self, result):
        assert set(result.speedup) == set(SMALL.benchmarks)

    def test_speedups_in_band(self, result):
        for name, speedup in result.speedup.items():
            assert 1.0 <= speedup <= 1.9, name

    def test_memory_bound_apps_slowest(self, result):
        assert result.speedup["mcf"] < result.speedup["susan"]
        assert result.speedup["yacr2"] < result.speedup["susan"]

    def test_fast_ipc_below_base(self, result):
        for name in result.ipc:
            assert result.ipc[name]["Fast"] <= result.ipc[name]["Base"] + 1e-9

    def test_pipe_ipc_at_least_base(self, result):
        for name in result.ipc:
            assert result.ipc[name]["Pipe"] >= result.ipc[name]["Base"] - 1e-9

    def test_class_means_present(self, result):
        assert result.class_speedup
        assert result.mean_of_means_speedup > 1.0

    def test_format(self, result):
        text = result.format()
        assert "M-of-M" in text


class TestFigure9:
    @pytest.fixture(scope="class")
    def result(self, context):
        return run_figure9(context)

    def test_baseline_90w(self, result):
        assert result.base_chip_watts == pytest.approx(90.0, rel=1e-6)

    def test_power_ordering(self, result):
        assert result.herding_chip_watts < result.no_herding_chip_watts < result.base_chip_watts

    def test_savings_bands(self, result):
        """Paper: -19% without herding, -29% with herding."""
        assert 0.10 <= result.no_herding_saving <= 0.30
        assert 0.20 <= result.herding_saving <= 0.40

    def test_per_benchmark_savings_positive(self, result):
        for name, (w2d, w3d, saving) in result.per_benchmark.items():
            assert w3d < w2d, name
            assert 0.05 < saving < 0.45, name

    def test_format(self, result):
        assert "Figure 9" in result.format()


class TestFigure10:
    @pytest.fixture(scope="class")
    def result(self, context):
        return run_figure10(context, candidates=["mpeg2", "yacr2", "susan"])

    def test_temperature_ordering(self, result):
        """2D < 3D with herding < 3D without herding."""
        assert result.delta_no_herding > 0
        assert result.delta_herding > 0
        assert result.delta_herding < result.delta_no_herding

    def test_2d_peak_in_band(self, result):
        """Paper: 360 K planar worst case (wide band at smoke settings)."""
        assert 340.0 <= result.peak_2d <= 390.0

    def test_herding_reduction_positive(self, result):
        assert 0.1 <= result.herding_delta_reduction <= 0.8

    def test_fixed_app_maps_present(self, result):
        assert set(result.fixed_app) == {"Base", "3D-noTH", "3D"}

    def test_format(self, result):
        assert "Figure 10" in result.format()


class TestPowerDensity:
    def test_iso_power_much_hotter(self, context):
        result = run_power_density(context)
        # Paper: +58 K at 4x density.
        assert 20.0 <= result.delta_k <= 80.0
        assert result.iso_watts == pytest.approx(result.planar_watts, rel=1e-6)

    def test_format(self, context):
        assert "iso-power" in run_power_density(context).format()


class TestWidthStats:
    def test_accuracy_near_97(self, context):
        result = run_width_stats(context)
        # Paper: 97% of all fetched instructions.
        assert result.mean_all_inst_accuracy >= 0.93

    def test_per_benchmark_entries(self, context):
        result = run_width_stats(context)
        assert set(result.all_inst_accuracy) == set(SMALL.benchmarks)

    def test_format(self, context):
        assert "accuracy" in run_width_stats(context).format()
