"""The compiled-trace store: generate once, map everywhere.

A config sweep must pay for each workload's emulation and compilation
once (not once per configuration), a second sweep against a warm store
must do *zero* emulator runs, workers must receive traces as
memory-mapped files rather than regenerating them, and any damaged
store entry must cost one regeneration — never a wrong result.
"""

from __future__ import annotations

import json

from repro.experiments import faults
from repro.experiments.cache import ResultCache, TraceStore, trace_store_key
from repro.experiments.context import ExperimentContext, ExperimentSettings
from repro.isa.compiled import compile_trace
from repro.workloads.suite import fingerprint, generate

TINY = ExperimentSettings(
    trace_length=2_000,
    warmup=500,
    benchmarks=("adpcm", "susan"),
    thermal_grid=32,
)

PAIRS = [("adpcm", "Base"), ("adpcm", "TH"), ("susan", "Base"), ("susan", "TH")]


def _fields(result):
    return {
        "benchmark": result.benchmark,
        "instructions": result.instructions,
        "cycles": result.cycles,
        "cpi_stack": result.cpi_stack,
        "herding": result.herding,
    }


class TestFingerprint:
    def test_deterministic_and_distinct(self):
        assert fingerprint("adpcm", 2_000) == fingerprint("adpcm", 2_000)
        assert fingerprint("adpcm", 2_000) != fingerprint("adpcm", 2_001)
        assert fingerprint("adpcm", 2_000) != fingerprint("susan", 2_000)
        assert fingerprint("adpcm", 2_000, seed=7) != fingerprint("adpcm", 2_000)


class TestTraceStore:
    def _store(self, tmp_path) -> TraceStore:
        return ResultCache(tmp_path).trace_store()

    def test_store_load_roundtrip(self, tmp_path):
        store = self._store(tmp_path)
        compiled = compile_trace(generate("adpcm", length=300))
        key = trace_store_key(fingerprint("adpcm", 300))
        assert store.store(key, compiled) is not None
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.name == "adpcm"
        assert len(loaded) == 300
        assert loaded.to_trace().instructions == \
            compiled.to_trace().instructions
        assert store.hits == 1 and store.stores == 1

    def test_missing_entry_is_a_miss(self, tmp_path):
        store = self._store(tmp_path)
        assert store.load("0" * 64) is None
        assert store.misses == 1
        assert store.evictions == 0  # nothing to evict

    def test_corrupt_array_evicts_both_files(self, tmp_path):
        store = self._store(tmp_path)
        compiled = compile_trace(generate("adpcm", length=300))
        key = trace_store_key(fingerprint("adpcm", 300))
        npy = store.store(key, compiled)
        npy.write_bytes(b"garbage")
        assert store.load(key) is None
        assert store.evictions == 1
        assert not npy.exists()
        assert not npy.with_suffix(".json").exists()

    def test_corrupt_meta_evicts_both_files(self, tmp_path):
        store = self._store(tmp_path)
        compiled = compile_trace(generate("adpcm", length=300))
        key = trace_store_key(fingerprint("adpcm", 300))
        npy = store.store(key, compiled)
        meta = npy.with_suffix(".json")
        payload = json.loads(meta.read_text())
        payload["schema"] = 9999
        meta.write_text(json.dumps(payload))
        assert store.load(key) is None
        assert store.evictions == 1
        assert not npy.exists() and not meta.exists()

    def test_torn_write_self_heals(self, tmp_path):
        """An array without its metadata (crash between renames) is
        indistinguishable from a miss and gets cleaned up."""
        store = self._store(tmp_path)
        compiled = compile_trace(generate("adpcm", length=300))
        key = trace_store_key(fingerprint("adpcm", 300))
        npy = store.store(key, compiled)
        npy.with_suffix(".json").unlink()
        assert store.load(key) is None
        assert not npy.exists()


class TestLedgerAccounting:
    """Trace entries count against ``REPRO_CACHE_MAX_MB`` via the shared
    size ledger when the store comes from :meth:`ResultCache.trace_store`."""

    def test_store_and_evict_are_ledger_accounted(self, tmp_path):
        cache = ResultCache(tmp_path)
        store = cache.trace_store()
        key = trace_store_key(fingerprint("adpcm", 300))
        npy = store.store(key, compile_trace(generate("adpcm", length=300)))
        expected = npy.stat().st_size + npy.with_suffix(".json").stat().st_size
        assert cache.ledger.total_bytes() == expected
        assert list(cache.ledger.state()) == [f"trace:{key}"]
        npy.write_bytes(b"garbage")
        assert store.load(key) is None  # damaged entry: evicted...
        assert cache.ledger.total_bytes() == 0  # ...and de-accounted

    def test_standalone_store_is_unaccounted(self, tmp_path):
        store = TraceStore(tmp_path / "traces")
        key = trace_store_key(fingerprint("adpcm", 300))
        npy = store.store(key, compile_trace(generate("adpcm", length=300)))
        assert npy is not None
        assert store.load(key) is not None  # works fine, just unbounded

    def test_trace_store_triggers_cap_enforcement(self, tmp_path):
        """Storing a trace enforces the cap with the new entry protected:
        with everything else claimed or fresh, the *results* make room."""
        cache = ResultCache(tmp_path, max_mb=1 / 1024)  # 1 KiB: tiny
        result_key = "ab" + "0" * 62
        cache.store(result_key, b"x" * 4096)
        assert cache._path(result_key).exists()  # protected at its own store
        store = cache.trace_store()
        key = trace_store_key(fingerprint("adpcm", 300))
        npy = store.store(key, compile_trace(generate("adpcm", length=300)))
        assert npy is not None and npy.exists()  # just stored: protected
        assert not cache._path(result_key).exists()  # evicted to make room
        assert cache.ledger.total_bytes() == \
            npy.stat().st_size + npy.with_suffix(".json").stat().st_size


class TestSweepReuse:
    def test_one_generation_per_workload_per_sweep(self, tmp_path):
        context = ExperimentContext(TINY, jobs=1,
                                    cache=ResultCache(tmp_path))
        context.run_many(PAIRS)
        # Two workloads, four simulations: the emulator ran once per
        # workload, not once per (workload, config).
        assert context.stats.simulated == 4
        assert context.stats.traces_generated == 2
        assert len(context.cache.trace_store().entries()) == 2

    def test_warm_store_does_zero_emulator_runs(self, tmp_path):
        first = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        results = first.run_many(PAIRS)
        # Drop the *result* entries so the second sweep must re-simulate,
        # while the compiled traces stay warm.
        for entry in first.cache.entries():
            entry.unlink()
        second = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        again = second.run_many(PAIRS)
        assert second.stats.traces_generated == 0
        assert second.stats.trace_cache_hits == 2
        assert second.stats.simulated == 4
        for pair in PAIRS:
            assert _fields(again[pair]) == _fields(results[pair]), pair

    def test_store_disabled_with_cache(self):
        context = ExperimentContext(TINY, jobs=1, cache=None)
        context.run("adpcm", "Base")
        assert context.stats.trace_cache_hits == 0
        assert context.stats.traces_generated == 1

    def test_stats_payload_carries_trace_fields(self, tmp_path):
        context = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        context.run_many(PAIRS)
        payload = context.stats.as_dict()
        assert payload["traces_generated"] == 2
        assert payload["trace_cache_hits"] == 0
        assert payload["trace_compile_seconds"] >= 0.0
        assert payload["instructions_simulated"] == 4 * TINY.trace_length
        assert payload["instructions_per_second"] > 0


class TestWorkerTransport:
    def test_workers_map_the_stored_trace(self, tmp_path):
        """Parallel sweeps ship a file path per task, not a pickled
        instruction list, and results match the serial reference."""
        context = ExperimentContext(TINY, jobs=2, cache=ResultCache(tmp_path))
        results = context.run_many(PAIRS)
        assert context.stats.traces_generated == 2  # parent only
        serial = ExperimentContext(TINY, jobs=1, cache=None)
        for pair in PAIRS:
            assert _fields(results[pair]) == _fields(serial.run(*pair)), pair

    def test_killed_worker_with_mmap_transport(self, tmp_path, monkeypatch):
        """A worker dying mid-batch never corrupts the store or the
        results: retries re-map the same on-disk trace."""
        token_dir = tmp_path / "fault-tokens"
        faults.arm_worker_kills(token_dir, 1)
        monkeypatch.setenv(faults.ENV_FAULT_DIR, str(token_dir))
        context = ExperimentContext(TINY, jobs=2,
                                    cache=ResultCache(tmp_path / "cache"))
        context.retry_backoff_s = 0.01
        results = context.run_many(PAIRS)
        assert context.stats.pool_restarts >= 1
        monkeypatch.delenv(faults.ENV_FAULT_DIR)
        serial = ExperimentContext(TINY, jobs=1, cache=None)
        for pair in PAIRS:
            assert _fields(results[pair]) == _fields(serial.run(*pair)), pair
        # The store survived the dead worker intact.
        store = ExperimentContext(
            TINY, jobs=1, cache=ResultCache(tmp_path / "cache")
        ).cache.trace_store()
        assert len(store.entries()) == 2

    def test_vanished_trace_file_degrades_to_regeneration(self, tmp_path):
        """A worker whose trace file disappeared regenerates and still
        produces the right result."""
        from repro.experiments.context import _simulate_task

        context = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        config = context._config_for("Base")
        result = _simulate_task(
            "adpcm", config, TINY.trace_length, TINY.warmup,
            trace_file=str(tmp_path / "missing.npy"),
        )
        reference = ExperimentContext(TINY, jobs=1, cache=None).run(
            "adpcm", "Base"
        )
        assert _fields(result) == _fields(reference)


class TestWorkStealing:
    def test_abandoned_claims_are_stolen_mid_wait(self, tmp_path):
        """Claims whose holders died are taken over and simulated
        immediately during the collective wait, not after a timeout."""
        import subprocess
        import sys
        import time

        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        dead_pid = proc.pid

        cache = ResultCache(tmp_path)
        context = ExperimentContext(TINY, jobs=1, cache=cache)
        context.claim_poll_s = 0.01
        for benchmark, label in PAIRS:
            key = context._cache_key(benchmark, context._config_for(label))
            path = cache._claim_path(key)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps({"pid": dead_pid, "ts": time.time()}))
        results = context.run_many(PAIRS)
        assert context.stats.claim_waits == 4
        assert context.stats.claim_takeovers == 4
        assert context.stats.claim_steals == 4
        assert context.stats.simulated == 4
        steal_events = [e for e in context.stats.events
                        if e["event"] == "claim_steal"]
        assert steal_events and steal_events[0]["tasks"] >= 1
        serial = ExperimentContext(TINY, jobs=1, cache=None)
        for pair in PAIRS:
            assert _fields(results[pair]) == _fields(serial.run(*pair)), pair
        assert cache.claims() == []  # all released after storing

    def test_peer_results_adopted_without_simulation(self, tmp_path):
        """Keys another live process finishes during the wait are adopted
        (dedup), exercising the collective-poll happy path."""
        import threading
        import time

        produced = {
            pair: ExperimentContext(TINY, jobs=1, cache=None).run(*pair)
            for pair in PAIRS[:2]
        }
        shared = ResultCache(tmp_path)
        context = ExperimentContext(TINY, jobs=1, cache=ResultCache(tmp_path))
        context.claim_poll_s = 0.01
        keys = {}
        for benchmark, label in PAIRS[:2]:
            key = context._cache_key(benchmark, context._config_for(label))
            keys[(benchmark, label)] = key
            assert shared.try_claim(key)

        def peer_finishes():
            time.sleep(0.3)
            for pair, key in keys.items():
                shared.store(key, produced[pair])
                shared.release_claim(key)

        thread = threading.Thread(target=peer_finishes)
        thread.start()
        try:
            results = context.run_many(PAIRS[:2])
        finally:
            thread.join()
        assert context.stats.simulated == 0
        assert context.stats.claim_dedup == 2
        assert context.stats.claim_steals == 0
        for pair in PAIRS[:2]:
            assert _fields(results[pair]) == _fields(produced[pair]), pair
