"""Tests for experiment result exports."""

import csv
import io
import json

import pytest

from repro.experiments import (
    ExperimentContext,
    ExperimentSettings,
    run_figure8,
    run_figure9,
    run_figure10,
    run_table2,
)
from repro.experiments.export import (
    figure8_rows,
    figure9_rows,
    figure10_rows,
    table2_rows,
    to_csv,
    to_json,
    write_rows,
)

TINY = ExperimentSettings(
    trace_length=4_000,
    warmup=1_200,
    benchmarks=("mpeg2", "mcf"),
    thermal_grid=32,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext(TINY)


class TestRowExtraction:
    def test_table2_rows(self):
        rows = table2_rows(run_table2())
        assert len(rows) >= 15
        assert {"block", "latency_2d_ps", "improvement"} <= set(rows[0])

    def test_figure8_rows(self, context):
        rows = figure8_rows(run_figure8(context))
        assert len(rows) == 2
        assert "speedup_3d" in rows[0]
        assert "ipc_base" in rows[0]

    def test_figure9_rows(self, context):
        rows = figure9_rows(run_figure9(context))
        assert all(row["herding_watts"] < row["planar_watts"] for row in rows)

    def test_figure10_rows(self, context):
        rows = figure10_rows(run_figure10(context, candidates=["mpeg2"]))
        assert {row["config"] for row in rows} == {"Base", "3D-noTH", "3D"}


class TestSerialization:
    ROWS = [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]

    def test_json_roundtrip(self):
        assert json.loads(to_json(self.ROWS)) == self.ROWS

    def test_csv_shape(self):
        parsed = list(csv.DictReader(io.StringIO(to_csv(self.ROWS))))
        assert parsed == [{"a": "1", "b": "x"}, {"a": "2", "b": "y"}]

    def test_csv_empty(self):
        assert to_csv([]) == ""

    def test_write_json(self, tmp_path):
        path = tmp_path / "out.json"
        write_rows(self.ROWS, str(path))
        assert json.loads(path.read_text()) == self.ROWS

    def test_write_csv(self, tmp_path):
        path = tmp_path / "out.csv"
        write_rows(self.ROWS, str(path))
        assert "a,b" in path.read_text()

    def test_write_unknown_extension(self, tmp_path):
        with pytest.raises(ValueError):
            write_rows(self.ROWS, str(tmp_path / "out.parquet"))
