"""Columnar trace compilation: exact round-trips and strictness.

The compiled form is only allowed to exist if it is *exact*: every
instruction must survive ``compile_trace`` -> ``to_trace`` unchanged,
traces outside the fixed-width layout must refuse to compile (callers
then use the object path), and damaged on-disk entries must raise
``TraceReadError`` rather than deliver garbage into a simulation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.isa.compiled import (
    TRACE_DTYPE,
    TRACE_SCHEMA_VERSION,
    TraceCompileError,
    TraceReadError,
    compile_trace,
    meta_path_for,
    read_compiled,
    write_compiled,
)
from repro.isa.instruction import MAX_SOURCES, TraceInstruction
from repro.isa.opcodes import OpClass
from repro.isa.trace import Trace
from repro.workloads.suite import generate


def _roundtrip(trace: Trace) -> Trace:
    return compile_trace(trace).to_trace()


class TestRoundTrip:
    def test_generated_trace_roundtrips_exactly(self):
        trace = generate("mpeg2", length=2_000)
        back = _roundtrip(trace)
        assert back.name == trace.name
        assert back.benchmark_class == trace.benchmark_class
        assert back.seed == trace.seed
        assert back.instructions == trace.instructions

    def test_every_benchmark_class_is_compilable(self):
        for name in ("gzip", "swim", "adpcm", "susan", "yacr2", "blast"):
            trace = generate(name, length=400)
            assert _roundtrip(trace).instructions == trace.instructions

    def test_optional_fields_preserve_none(self):
        insts = [
            TraceInstruction(pc=0x1000, op=OpClass.IALU, dst=3, result=7,
                             srcs=(1, 2), src_values=(5, 9)),
            TraceInstruction(pc=0x1004, op=OpClass.BRANCH, taken=False),
            TraceInstruction(pc=0x1008, op=OpClass.STORE, mem_addr=0x2000,
                             mem_value=None, srcs=(3,), src_values=(7,)),
            TraceInstruction(pc=0x100C, op=OpClass.NOP),
        ]
        back = _roundtrip(Trace("edge", insts, "unknown", seed=None))
        for a, b in zip(back.instructions, insts):
            assert a == b
        assert back.instructions[1].target is None
        assert back.instructions[2].mem_value is None
        assert back.instructions[3].dst is None

    def test_width_boundary_values_roundtrip(self):
        # The 16-bit significance boundary (2**15) and both u64 extremes.
        values = [0, (1 << 15) - 1, 1 << 15, (1 << 64) - (1 << 15),
                  (1 << 64) - (1 << 15) - 1, (1 << 64) - 1]
        insts = [
            TraceInstruction(pc=0x1000 + 4 * i, op=OpClass.IALU, dst=1,
                             result=v, srcs=(2,), src_values=(v,))
            for i, v in enumerate(values)
        ]
        back = _roundtrip(Trace("widths", insts))
        for inst, v in zip(back.instructions, values):
            assert inst.result == v
            assert inst.src_values == (v,)

    def test_empty_trace(self):
        compiled = compile_trace(Trace("empty", []))
        assert len(compiled) == 0
        assert compiled.to_trace().instructions == []


class TestStrictness:
    def test_too_many_sources_refuses(self):
        inst = TraceInstruction(pc=0x1000, op=OpClass.IALU,
                                srcs=(1, 2, 3), src_values=(1, 2, 3))
        with pytest.raises(TraceCompileError, match=f"{MAX_SOURCES}-column"):
            compile_trace(Trace("wide", [inst]))

    def test_value_outside_u64_refuses(self):
        inst = TraceInstruction(pc=0x1000, op=OpClass.IALU, dst=1,
                                result=1 << 64)
        with pytest.raises(TraceCompileError, match="64-bit"):
            compile_trace(Trace("big", [inst]))

    def test_uncompilable_trace_memoizes_none(self):
        inst = TraceInstruction(pc=0x1000, op=OpClass.IALU,
                                srcs=(1, 2, 3), src_values=(1, 2, 3))
        trace = Trace("wide", [inst])
        assert trace.compiled() is None
        assert trace.compiled() is None  # memoized, no re-attempt

    def test_compilable_trace_memoizes_instance(self):
        trace = generate("adpcm", length=200)
        assert trace.compiled() is trace.compiled()


class TestOnDisk:
    def _write(self, tmp_path, length=300):
        compiled = compile_trace(generate("adpcm", length=length))
        npy = tmp_path / "entry.npy"
        write_compiled(compiled, npy)
        return compiled, npy

    def test_write_read_roundtrip_mmap(self, tmp_path):
        compiled, npy = self._write(tmp_path)
        loaded = read_compiled(npy)
        assert loaded.name == compiled.name
        assert loaded.benchmark_class == compiled.benchmark_class
        assert loaded.seed == compiled.seed
        assert loaded.array.dtype == TRACE_DTYPE
        assert isinstance(loaded.array, np.memmap)
        assert np.array_equal(np.asarray(loaded.array), compiled.array)
        assert loaded.to_trace().instructions == \
            compiled.to_trace().instructions

    def test_missing_meta_raises(self, tmp_path):
        _, npy = self._write(tmp_path)
        (tmp_path / "entry.json").unlink()
        with pytest.raises(TraceReadError, match="metadata"):
            read_compiled(npy)

    def test_schema_drift_raises(self, tmp_path):
        import json

        _, npy = self._write(tmp_path)
        meta_path = tmp_path / "entry.json"
        meta = json.loads(meta_path.read_text())
        meta["schema"] = TRACE_SCHEMA_VERSION + 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(TraceReadError, match="schema"):
            read_compiled(npy)

    def test_corrupt_array_raises(self, tmp_path):
        _, npy = self._write(tmp_path)
        npy.write_bytes(b"this is not a npy file")
        with pytest.raises(TraceReadError):
            read_compiled(npy)

    def test_truncated_array_raises(self, tmp_path):
        _, npy = self._write(tmp_path)
        data = npy.read_bytes()
        npy.write_bytes(data[: len(data) // 2])
        with pytest.raises(TraceReadError):
            read_compiled(npy)

    def test_length_mismatch_raises(self, tmp_path):
        import json

        _, npy = self._write(tmp_path)
        meta_path = tmp_path / "entry.json"
        meta = json.loads(meta_path.read_text())
        meta["length"] += 1
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(TraceReadError, match="rows"):
            read_compiled(npy)

    def test_meta_path_for(self):
        assert meta_path_for("/x/abc.npy") == "/x/abc.json"
        assert meta_path_for("/x/abc") == "/x/abc.json"
