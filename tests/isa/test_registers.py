"""Tests for the register namespace."""

import pytest

from repro.isa.registers import (
    FP_REG_BASE,
    NUM_FP_REGS,
    NUM_INT_REGS,
    RegisterClass,
    STACK_POINTER_REG,
    TOTAL_REGS,
    ZERO_REG,
    fp_reg,
    is_zero_reg,
    register_class,
)


class TestNamespace:
    def test_sizes(self):
        assert TOTAL_REGS == NUM_INT_REGS + NUM_FP_REGS

    def test_int_classification(self):
        assert register_class(0) is RegisterClass.INT
        assert register_class(NUM_INT_REGS - 1) is RegisterClass.INT

    def test_fp_classification(self):
        assert register_class(FP_REG_BASE) is RegisterClass.FP
        assert register_class(TOTAL_REGS - 1) is RegisterClass.FP

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            register_class(TOTAL_REGS)
        with pytest.raises(ValueError):
            register_class(-1)

    def test_fp_reg_helper(self):
        assert fp_reg(0) == FP_REG_BASE
        assert fp_reg(NUM_FP_REGS - 1) == TOTAL_REGS - 1
        with pytest.raises(ValueError):
            fp_reg(NUM_FP_REGS)

    def test_special_registers_are_int(self):
        assert register_class(ZERO_REG) is RegisterClass.INT
        assert register_class(STACK_POINTER_REG) is RegisterClass.INT
        assert ZERO_REG != STACK_POINTER_REG

    def test_is_zero_reg(self):
        assert is_zero_reg(ZERO_REG)
        assert not is_zero_reg(0)
