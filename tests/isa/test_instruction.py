"""Tests for the trace instruction record."""

import pytest

from repro.isa.instruction import TraceInstruction
from repro.isa.opcodes import OpClass
from repro.isa.values import to_unsigned


def make_alu(result=5, srcs=(1, 2), src_values=(3, 4), pc=0x1000):
    return TraceInstruction(
        pc=pc, op=OpClass.IALU, srcs=srcs, dst=3,
        result=result, src_values=src_values,
    )


class TestConstruction:
    def test_memory_requires_address(self):
        with pytest.raises(ValueError):
            TraceInstruction(pc=0x1000, op=OpClass.LOAD, dst=1)

    def test_taken_control_requires_target(self):
        with pytest.raises(ValueError):
            TraceInstruction(pc=0x1000, op=OpClass.BRANCH, taken=True)

    def test_not_taken_branch_needs_no_target(self):
        inst = TraceInstruction(pc=0x1000, op=OpClass.BRANCH, taken=False)
        assert inst.next_pc == 0x1004

    def test_src_values_must_match_srcs(self):
        with pytest.raises(ValueError):
            TraceInstruction(pc=0, op=OpClass.IALU, srcs=(1, 2), src_values=(3,))

    def test_src_values_may_be_omitted(self):
        inst = TraceInstruction(pc=0, op=OpClass.IALU, srcs=(1, 2))
        assert inst.operands_are_low_width  # vacuously true


class TestNextPc:
    def test_sequential(self):
        assert make_alu(pc=0x2000).next_pc == 0x2004

    def test_taken_branch(self):
        inst = TraceInstruction(pc=0x1000, op=OpClass.BRANCH, taken=True, target=0x1100)
        assert inst.next_pc == 0x1100

    def test_call(self):
        inst = TraceInstruction(pc=0x1000, op=OpClass.CALL, taken=True, target=0x8000)
        assert inst.next_pc == 0x8000


class TestWidthProperties:
    def test_low_width_all_narrow(self):
        assert make_alu(result=10, src_values=(1, 2)).is_low_width

    def test_wide_result_not_low(self):
        inst = make_alu(result=1 << 20, src_values=(1, 2))
        assert not inst.result_is_low_width
        assert not inst.is_low_width

    def test_wide_operand_not_low(self):
        inst = make_alu(result=1, src_values=(1 << 40, 2))
        assert inst.result_is_low_width
        assert not inst.operands_are_low_width
        assert not inst.is_low_width

    def test_negative_small_is_low(self):
        inst = make_alu(result=to_unsigned(-3), src_values=(to_unsigned(-1), 2))
        assert inst.is_low_width

    def test_writes_register(self):
        assert make_alu().writes_register
        store = TraceInstruction(
            pc=0, op=OpClass.STORE, srcs=(1, 2), mem_addr=0x100, mem_value=5,
        )
        assert not store.writes_register


class TestDescribe:
    def test_describe_contains_pc_and_op(self):
        text = make_alu(pc=0x1234).describe()
        assert "0x00001234" in text
        assert "ialu" in text

    def test_describe_branch_direction(self):
        taken = TraceInstruction(pc=0, op=OpClass.BRANCH, taken=True, target=0x40)
        assert "(T" in taken.describe()
        not_taken = TraceInstruction(pc=0, op=OpClass.BRANCH, taken=False)
        assert "(NT" in not_taken.describe()
