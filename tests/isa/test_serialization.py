"""Tests for trace (de)serialization."""

import gzip
import json

import pytest

from repro.isa.serialization import load_trace, save_trace
from repro.workloads.suite import generate


@pytest.fixture(scope="module")
def small_trace():
    return generate("adpcm", length=400)


class TestRoundtrip:
    def test_roundtrip_identical(self, small_trace, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert loaded.name == small_trace.name
        assert loaded.benchmark_class == small_trace.benchmark_class
        assert loaded.seed == small_trace.seed
        assert len(loaded) == len(small_trace)
        for a, b in zip(small_trace, loaded):
            assert a == b

    def test_stats_preserved(self, small_trace, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert loaded.stats() == small_trace.stats()

    def test_file_is_gzip(self, small_trace, tmp_path):
        path = tmp_path / "t.jsonl.gz"
        save_trace(small_trace, path)
        with gzip.open(path, "rt") as stream:
            header = json.loads(stream.readline())
        assert header["format"] == "repro-trace"
        assert header["length"] == len(small_trace)


class TestValidation:
    def test_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "bogus.gz"
        with gzip.open(path, "wt") as stream:
            stream.write(json.dumps({"format": "something-else"}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.gz"
        with gzip.open(path, "wt") as stream:
            stream.write("")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "v99.gz"
        with gzip.open(path, "wt") as stream:
            stream.write(json.dumps({"format": "repro-trace", "version": 99}) + "\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_rejects_truncated_body(self, small_trace, tmp_path):
        path = tmp_path / "t.gz"
        save_trace(small_trace, path)
        with gzip.open(path, "rt") as stream:
            lines = stream.readlines()
        with gzip.open(path, "wt") as stream:
            stream.writelines(lines[:-10])
        with pytest.raises(ValueError):
            load_trace(path)
