"""Tests for the trace container and summary statistics."""

from repro.isa.instruction import TraceInstruction
from repro.isa.opcodes import OpClass
from repro.isa.trace import Trace, TraceStats
from repro.isa.values import UpperBitsEncoding, to_unsigned


def _alu(pc, result, src_values=()):
    srcs = tuple(range(len(src_values)))
    return TraceInstruction(pc=pc, op=OpClass.IALU, srcs=srcs, dst=5,
                            result=result, src_values=src_values)


def _load(pc, addr, value):
    return TraceInstruction(pc=pc, op=OpClass.LOAD, srcs=(1,), dst=2,
                            result=value, src_values=(addr,),
                            mem_addr=addr, mem_value=value)


def _store(pc, addr, value):
    return TraceInstruction(pc=pc, op=OpClass.STORE, srcs=(1, 2),
                            src_values=(addr, value),
                            mem_addr=addr, mem_value=value)


def _branch(pc, taken, target=None):
    return TraceInstruction(pc=pc, op=OpClass.BRANCH, srcs=(1,), src_values=(0,),
                            taken=taken, target=target)


class TestTraceContainer:
    def test_len_iter_index(self):
        insts = [_alu(0, 1), _alu(4, 2)]
        trace = Trace(name="t", instructions=insts)
        assert len(trace) == 2
        assert list(trace) == insts
        assert trace[1] is insts[1]

    def test_metadata(self):
        trace = Trace(name="t", instructions=[], benchmark_class="MiBench", seed=7)
        assert trace.benchmark_class == "MiBench"
        assert trace.seed == 7


class TestTraceStats:
    def test_empty(self):
        stats = TraceStats.from_instructions([])
        assert stats.count == 0
        assert stats.low_width_result_fraction == 0.0

    def test_low_width_fraction(self):
        insts = [_alu(0, 1), _alu(4, 1 << 40), _alu(8, 3), _alu(12, 7)]
        stats = TraceStats.from_instructions(insts)
        assert stats.low_width_result_fraction == 0.75

    def test_operand_fraction(self):
        insts = [_alu(0, 1, (1, 1 << 40))]
        stats = TraceStats.from_instructions(insts)
        assert stats.low_width_operand_fraction == 0.5

    def test_branch_and_taken_fractions(self):
        insts = [_branch(0, True, 0x40), _branch(4, False), _alu(8, 1), _alu(12, 1)]
        stats = TraceStats.from_instructions(insts)
        assert stats.branch_fraction == 0.5
        assert stats.taken_fraction == 0.5

    def test_memory_fraction(self):
        insts = [_load(0, 0x1000, 5), _alu(4, 1)]
        stats = TraceStats.from_instructions(insts)
        assert stats.memory_fraction == 0.5

    def test_pam_address_match(self):
        """Second access with the same upper 48 bits as the last store matches."""
        insts = [
            _store(0, 0x2AAA_0000_1000, 5),
            _load(4, 0x2AAA_0000_1008, 5),   # same uppers -> match
            _load(8, 0x7FFF_0000_0000, 5),   # different -> no match
        ]
        stats = TraceStats.from_instructions(insts)
        assert abs(stats.address_upper_match_fraction - 1 / 3) < 1e-9

    def test_near_target_fraction(self):
        insts = [
            _branch(0x1000, True, 0x1100),            # same uppers
            _branch(0x1004, True, 0x7F00_0000_0000),  # far
        ]
        stats = TraceStats.from_instructions(insts)
        assert stats.near_target_fraction == 0.5

    def test_encoding_mix(self):
        insts = [
            _store(0, 0x2AAA_0000_1000, 0),                  # ALL_ZEROS
            _store(4, 0x2AAA_0000_1008, to_unsigned(-2)),    # ALL_ONES
            _store(8, 0x2AAA_0000_1010, 0xDEAD_BEEF_CAFE_0001),  # LITERAL
        ]
        stats = TraceStats.from_instructions(insts)
        mix = stats.dcache_encoding_mix
        assert abs(mix[UpperBitsEncoding.ALL_ZEROS] - 1 / 3) < 1e-9
        assert abs(mix[UpperBitsEncoding.ALL_ONES] - 1 / 3) < 1e-9
        assert abs(mix[UpperBitsEncoding.LITERAL] - 1 / 3) < 1e-9

    def test_format_is_text(self):
        stats = TraceStats.from_instructions([_alu(0, 1)])
        text = stats.format()
        assert "instructions" in text
        assert "low-width results" in text

    def test_trace_stats_shortcut(self):
        trace = Trace(name="t", instructions=[_alu(0, 1)])
        assert trace.stats().count == 1
