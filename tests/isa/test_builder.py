"""Tests for the fluent trace builder."""

import pytest

from repro.cpu.config import baseline_config
from repro.cpu.pipeline import simulate
from repro.isa.builder import TraceBuilder
from repro.isa.opcodes import OpClass


class TestBasics:
    def test_sequential_pcs(self):
        trace = TraceBuilder(start_pc=0x1000).alu(1, 5).alu(2, 6).build()
        assert [i.pc for i in trace] == [0x1000, 0x1004]

    def test_rejects_unaligned_start(self):
        with pytest.raises(ValueError):
            TraceBuilder(start_pc=0x1002)

    def test_dataflow_values_tracked(self):
        trace = (TraceBuilder()
                 .alu(1, 5)
                 .alu(2, 9, srcs=(1,))
                 .alu(3, 14, srcs=(1, 2))
                 .build())
        assert trace[1].src_values == (5,)
        assert trace[2].src_values == (5, 9)

    def test_unwritten_register_reads_zero(self):
        trace = TraceBuilder().alu(1, 5, srcs=(9,)).build()
        assert trace[0].src_values == (0,)

    def test_memory_ops(self):
        trace = (TraceBuilder()
                 .alu(1, 0x2AAA_0000_0000)
                 .load(2, addr=0x2AAA_0000_0000, value=99, srcs=(1,))
                 .store(addr=0x2AAA_0000_0008, value=99, srcs=(1, 2))
                 .build())
        assert trace[1].mem_value == 99
        assert trace[2].src_values == (0x2AAA_0000_0000, 99)

    def test_negative_results_normalized(self):
        trace = TraceBuilder().alu(1, -5).build()
        assert trace[0].result == (1 << 64) - 5


class TestControlFlow:
    def test_taken_branch_moves_pc(self):
        builder = TraceBuilder(start_pc=0x1000)
        builder.branch(taken=True, target=0x1010)
        assert builder.next_pc == 0x1010

    def test_taken_branch_requires_target(self):
        with pytest.raises(ValueError):
            TraceBuilder().branch(taken=True)

    def test_unaligned_target_rejected(self):
        with pytest.raises(ValueError):
            TraceBuilder().branch(taken=True, target=0x1002)

    def test_path_continuity_enforced(self):
        builder = TraceBuilder(start_pc=0x1000)
        builder.alu(1, 5)
        # Manually append a discontiguous instruction via a jump misuse:
        builder._pc = 0x9000  # simulate a bug
        builder.alu(2, 6)
        with pytest.raises(ValueError):
            builder.build()

    def test_call_ret_jump(self):
        trace = (TraceBuilder(start_pc=0x1000)
                 .call(0x2000)           # -> 0x2000
                 .alu(1, 5)              # 0x2000
                 .ret(0x1004)            # back
                 .jump(0x3000)
                 .alu(2, 6)
                 .build())
        assert trace[1].pc == 0x2000
        assert trace[3].op is OpClass.JUMP
        assert trace[4].pc == 0x3000

    def test_repeat(self):
        def body(b, i):
            b.alu(1, i)
        trace = TraceBuilder().repeat(5, body).build()
        assert len(trace) == 5
        assert trace[4].result == 4


class TestValidation:
    def test_bad_alu_opcode(self):
        with pytest.raises(ValueError):
            TraceBuilder().alu(1, 5, op=OpClass.LOAD)

    def test_bad_fp_opcode(self):
        with pytest.raises(ValueError):
            TraceBuilder().fp(40, op=OpClass.IALU)

    def test_negative_repeat(self):
        with pytest.raises(ValueError):
            TraceBuilder().repeat(-1, lambda b, i: None)


class TestSimulatorIntegration:
    def test_built_trace_simulates(self):
        def body(builder, i):
            builder.alu(1, i).alu(2, i + 1, srcs=(1,))
        trace = TraceBuilder("micro").repeat(50, body).build()
        result = simulate(trace, baseline_config())
        assert result.instructions == 100
        assert result.ipc > 0.3

    def test_dependent_chain_microbench(self):
        builder = TraceBuilder("chain")
        value = 0
        for i in range(60):
            value += 1
            builder.alu(1, value, srcs=(1,))
        result = simulate(builder.build(), baseline_config())
        # A pure dependence chain commits ~1 per cycle at best.
        assert result.ipc <= 1.1
