"""Tests for opcode classification and functional-unit mapping."""

from repro.isa.opcodes import FU_FOR_OP, FunctionalUnit, OP_LATENCY, OpClass


class TestOpClassProperties:
    def test_memory_ops(self):
        assert OpClass.LOAD.is_memory
        assert OpClass.STORE.is_memory
        assert not OpClass.IALU.is_memory

    def test_control_ops(self):
        for op in (OpClass.BRANCH, OpClass.JUMP, OpClass.CALL, OpClass.RETURN):
            assert op.is_control
        assert not OpClass.LOAD.is_control

    def test_only_branch_is_conditional(self):
        assert OpClass.BRANCH.is_conditional
        assert not OpClass.JUMP.is_conditional

    def test_fp_ops(self):
        for op in (OpClass.FADD, OpClass.FMUL, OpClass.FDIV):
            assert op.is_fp
            assert not op.is_integer_datapath

    def test_integer_datapath_membership(self):
        """Width prediction applies to int ALU ops, loads and stores."""
        expected = {OpClass.IALU, OpClass.ISHIFT, OpClass.IMUL,
                    OpClass.LOAD, OpClass.STORE}
        actual = {op for op in OpClass if op.is_integer_datapath}
        assert actual == expected


class TestMappings:
    def test_every_op_has_fu(self):
        for op in OpClass:
            assert op in FU_FOR_OP

    def test_every_op_has_latency(self):
        for op in OpClass:
            assert OP_LATENCY[op] >= 1

    def test_fdiv_is_longest(self):
        assert OP_LATENCY[OpClass.FDIV] == max(OP_LATENCY.values())

    def test_simple_int_single_cycle(self):
        assert OP_LATENCY[OpClass.IALU] == 1
        assert OP_LATENCY[OpClass.ISHIFT] == 1

    def test_memory_port_assignment(self):
        assert FU_FOR_OP[OpClass.STORE] is FunctionalUnit.LOAD_STORE_PORT
        assert FU_FOR_OP[OpClass.LOAD] is FunctionalUnit.LOAD_PORT
