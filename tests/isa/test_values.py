"""Tests for the value-width utilities underlying all herding techniques."""

import pytest
from hypothesis import given, strategies as st

from repro.isa.values import (
    LOW_WIDTH_BITS,
    VALUE_BITS,
    WORD_BITS,
    WORDS_PER_VALUE,
    UpperBitsEncoding,
    classify_upper_bits,
    is_low_width,
    join_words,
    sign_extend,
    significant_width,
    split_words,
    to_unsigned,
    upper_bits,
)

u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestSignExtend:
    def test_positive_small(self):
        assert sign_extend(5, 16) == 5

    def test_negative_16bit(self):
        assert sign_extend(0xFFFF, 16) == -1

    def test_min_16bit(self):
        assert sign_extend(0x8000, 16) == -(1 << 15)

    def test_full_width_negative(self):
        assert sign_extend((1 << 64) - 1) == -1

    def test_full_width_positive(self):
        assert sign_extend(123) == 123

    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            sign_extend(1, 0)

    def test_rejects_oversized_bits(self):
        with pytest.raises(ValueError):
            sign_extend(1, 65)

    @given(u64)
    def test_idempotent_at_64(self, value):
        assert sign_extend(value) == sign_extend(to_unsigned(sign_extend(value)))


class TestSignificantWidth:
    def test_zero(self):
        assert significant_width(0) == 1

    def test_minus_one(self):
        assert significant_width((1 << 64) - 1) == 1

    def test_one(self):
        assert significant_width(1) == 2

    def test_boundary_low_positive(self):
        # 0x7FFF is the largest value representable in 16 signed bits.
        assert significant_width(0x7FFF) == 16
        assert significant_width(0x8000) == 17

    def test_boundary_low_negative(self):
        minus_32768 = to_unsigned(-(1 << 15))
        assert significant_width(minus_32768) == 16
        minus_32769 = to_unsigned(-(1 << 15) - 1)
        assert significant_width(minus_32769) == 17

    def test_max_is_64(self):
        assert significant_width(1 << 62) == 64

    @given(u64)
    def test_within_bounds(self, value):
        assert 1 <= significant_width(value) <= VALUE_BITS

    @given(st.integers(min_value=-(1 << 63), max_value=(1 << 63) - 1))
    def test_roundtrip_through_width(self, signed):
        """A value is recoverable from its significant_width low bits."""
        unsigned = to_unsigned(signed)
        width = significant_width(unsigned)
        assert sign_extend(unsigned, width) == signed


class TestIsLowWidth:
    @pytest.mark.parametrize("value,expected", [
        (0, True),
        (1, True),
        (0x7FFF, True),
        (0x8000, False),
        (to_unsigned(-1), True),
        (to_unsigned(-(1 << 15)), True),
        (to_unsigned(-(1 << 15) - 1), False),
        (1 << 40, False),
    ])
    def test_cases(self, value, expected):
        assert is_low_width(value) is expected

    def test_custom_threshold(self):
        assert is_low_width(100, threshold=8)
        assert not is_low_width(200, threshold=8)

    @given(u64)
    def test_matches_significant_width(self, value):
        assert is_low_width(value) == (significant_width(value) <= LOW_WIDTH_BITS)


class TestWordSplitting:
    def test_constants(self):
        assert WORD_BITS * WORDS_PER_VALUE == VALUE_BITS

    def test_split_simple(self):
        words = split_words(0x0123_4567_89AB_CDEF)
        assert words == (0xCDEF, 0x89AB, 0x4567, 0x0123)

    def test_low_width_value_has_upper_words_zero(self):
        words = split_words(0x1234)
        assert words == (0x1234, 0, 0, 0)

    def test_join_rejects_wrong_count(self):
        with pytest.raises(ValueError):
            join_words((1, 2, 3))

    def test_join_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            join_words((1 << 16, 0, 0, 0))

    @given(u64)
    def test_roundtrip(self, value):
        assert join_words(split_words(value)) == value

    @given(u64)
    def test_lsw_on_top_die(self, value):
        """Word 0 (the top die's word) is the least significant word."""
        assert split_words(value)[0] == value & 0xFFFF


class TestClassifyUpperBits:
    def test_all_zeros(self):
        assert classify_upper_bits(0x1234) is UpperBitsEncoding.ALL_ZEROS

    def test_all_ones(self):
        assert classify_upper_bits(to_unsigned(-5)) is UpperBitsEncoding.ALL_ONES

    def test_same_as_address(self):
        addr = 0x2AAA_0000_1000
        value = (upper_bits(addr) << 16) | 0xBEEF
        assert classify_upper_bits(value, addr) is UpperBitsEncoding.SAME_AS_ADDRESS

    def test_literal_without_address(self):
        assert classify_upper_bits(0xDEAD_BEEF_0000_0001) is UpperBitsEncoding.LITERAL

    def test_near_pointer_without_address_is_literal(self):
        addr = 0x2AAA_0000_1000
        value = (upper_bits(addr) << 16) | 0xBEEF
        assert classify_upper_bits(value) is UpperBitsEncoding.LITERAL

    def test_zero_beats_address_match(self):
        """All-zeros takes priority even when the address uppers are zero."""
        assert classify_upper_bits(0x42, address=0x99) is UpperBitsEncoding.ALL_ZEROS

    def test_is_compressed(self):
        assert UpperBitsEncoding.ALL_ZEROS.is_compressed
        assert UpperBitsEncoding.ALL_ONES.is_compressed
        assert UpperBitsEncoding.SAME_AS_ADDRESS.is_compressed
        assert not UpperBitsEncoding.LITERAL.is_compressed

    @given(u64, u64)
    def test_compressed_values_reconstructible(self, value, addr):
        """Any compressed encoding allows exact upper-bit reconstruction."""
        encoding = classify_upper_bits(value, addr)
        low = value & 0xFFFF
        if encoding is UpperBitsEncoding.ALL_ZEROS:
            assert value == low
        elif encoding is UpperBitsEncoding.ALL_ONES:
            assert value == (((1 << 48) - 1) << 16) | low
        elif encoding is UpperBitsEncoding.SAME_AS_ADDRESS:
            assert value == (upper_bits(addr) << 16) | low


class TestUpperBits:
    def test_zero(self):
        assert upper_bits(0xFFFF) == 0

    def test_extracts_48(self):
        assert upper_bits(0x0123_4567_89AB_CDEF) == 0x0123_4567_89AB

    @given(u64)
    def test_reconstruction(self, value):
        assert (upper_bits(value) << 16) | (value & 0xFFFF) == value
