"""Tests for the dual-core chip model."""

import pytest

from repro.cpu.config import baseline_config
from repro.cpu.multicore import DualCoreRun, simulate_dual_core
from repro.cpu.pipeline import simulate
from repro.workloads.suite import generate


@pytest.fixture(scope="module")
def traces():
    return generate("adpcm", length=5000), generate("mcf", length=5000)


class TestDualCore:
    def test_both_cores_run(self, traces):
        run = simulate_dual_core(*traces, baseline_config(), warmup=1500)
        assert run.core0.benchmark == "adpcm"
        assert run.core1.benchmark == "mcf"
        assert run.core0.instructions == run.core1.instructions == 3500

    def test_throughput_is_sum(self, traces):
        run = simulate_dual_core(*traces, baseline_config(), warmup=1500)
        assert run.throughput_ipns == pytest.approx(run.core0.ipns + run.core1.ipns)

    def test_slower_core_time(self, traces):
        run = simulate_dual_core(*traces, baseline_config(), warmup=1500)
        assert run.slower_core_time_ns == max(run.core0.time_ns, run.core1.time_ns)

    def test_shared_l2_halves_capacity(self, traces):
        """Sharing must not help: per-core performance <= solo performance."""
        solo = simulate(traces[1], baseline_config(), warmup=1500)
        shared = simulate_dual_core(*traces, baseline_config(), warmup=1500)
        assert shared.core1.ipc <= solo.ipc + 1e-9

    def test_unshared_matches_solo(self, traces):
        solo = simulate(traces[0], baseline_config(), warmup=1500)
        run = simulate_dual_core(*traces, baseline_config(), warmup=1500,
                                 shared_l2=False)
        assert run.core0.ipc == pytest.approx(solo.ipc)

    def test_summary(self, traces):
        run = simulate_dual_core(*traces, baseline_config(), warmup=1500)
        text = run.summary()
        assert "core0" in text and "core1" in text and "throughput" in text


class TestMSHR:
    def test_fewer_mshrs_never_faster(self):
        """Bounding memory-level parallelism cannot increase performance."""
        from dataclasses import replace
        trace = generate("mcf", length=6000)
        many = simulate(trace, replace(baseline_config(), mshr_entries=16), warmup=2000)
        few = simulate(trace, replace(baseline_config(), mshr_entries=1), warmup=2000)
        assert few.ipc <= many.ipc + 1e-9

    def test_single_mshr_serializes_misses(self):
        from dataclasses import replace
        trace = generate("mcf", length=6000)
        few = simulate(trace, replace(baseline_config(), mshr_entries=1), warmup=2000)
        many = simulate(trace, replace(baseline_config(), mshr_entries=16), warmup=2000)
        # mcf is DRAM-bound: MLP = 1 must hurt it measurably.
        assert few.ipc < 0.95 * many.ipc
