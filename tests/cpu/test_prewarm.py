"""Tests for the steady-state L2 prewarm heuristic."""

import pytest

from repro.cpu.config import baseline_config
from repro.cpu.pipeline import TimingSimulator, simulate
from repro.isa.builder import TraceBuilder

HEAP = 0x2AAA_0000_0000


def hot_pool_trace(lines=64, passes=1, accesses=3000):
    """Random-ish revisits of a bounded pool (stationary hot set)."""
    builder = TraceBuilder("hot_pool")
    start = builder.next_pc
    for i in range(accesses):
        slot = (i * 17) % lines  # co-prime stride revisits every line
        builder.load(1, addr=HEAP + slot * 64, value=i & 0xFF, srcs=(2,))
        builder.alu(2, 1, srcs=(2,))
        last = i == accesses - 1
        builder.branch(taken=not last, target=None if last else start, srcs=(2,))
    return builder.build()


def single_pass_stream(accesses=3000, stride=192):
    """A never-revisited stream (steady state would miss too)."""
    builder = TraceBuilder("stream")
    start = builder.next_pc
    for i in range(accesses):
        builder.load(1, addr=HEAP + i * stride, value=i & 0xFF, srcs=(2,))
        builder.alu(2, 1, srcs=(2,))
        last = i == accesses - 1
        builder.branch(taken=not last, target=None if last else start, srcs=(2,))
    return builder.build()


class TestPrewarm:
    def test_hot_pool_prewarmed(self):
        """A revisited pool's first touches hit the prewarmed L2."""
        trace = hot_pool_trace()
        result = simulate(trace, baseline_config())
        # With the pool resident, DRAM is never touched.
        assert result.activity.module("dram").total <= 2

    def test_stream_not_prewarmed(self):
        """A single-pass large-stride stream keeps missing to DRAM."""
        trace = single_pass_stream()
        result = simulate(trace, baseline_config())
        assert result.activity.module("dram").total > 100

    def test_prewarm_flag_off(self):
        trace = hot_pool_trace()
        sim_on = TimingSimulator(baseline_config())
        on = sim_on.run(trace, prewarm=True)
        sim_off = TimingSimulator(baseline_config())
        off = sim_off.run(trace, prewarm=False)
        # Without prewarm the first pool pass misses.
        assert (off.activity.module("dram").total
                >= on.activity.module("dram").total)

    def test_prewarm_never_slows_down(self):
        for trace in (hot_pool_trace(accesses=1500), single_pass_stream(1500)):
            on = TimingSimulator(baseline_config()).run(trace, prewarm=True)
            off = TimingSimulator(baseline_config()).run(trace, prewarm=False)
            assert on.cycles <= off.cycles + 1
