"""Tests for the SimulationResult container and stall accounting."""

import pytest

from repro.core.activity import ActivityCounters
from repro.cpu.branch_predictor import BranchStats
from repro.cpu.results import SimulationResult, StallBreakdown


def make_result(instructions=1000, cycles=500, clock=2.66):
    return SimulationResult(
        benchmark="x",
        benchmark_class="c",
        config_name="base",
        clock_ghz=clock,
        instructions=instructions,
        cycles=cycles,
        activity=ActivityCounters(),
        branch_stats=BranchStats(),
    )


class TestMetrics:
    def test_ipc(self):
        assert make_result(1000, 500).ipc == 2.0

    def test_time_ns(self):
        result = make_result(1000, 532, clock=2.66)
        assert result.time_ns == pytest.approx(200.0)

    def test_ipns(self):
        result = make_result(1000, 500, clock=2.0)
        assert result.ipns == pytest.approx(4.0)

    def test_zero_cycles_safe(self):
        assert make_result(0, 0).ipc == 0.0

    def test_summary_has_core_fields(self):
        text = make_result().summary()
        assert "IPC" in text and "IPns" in text


class TestStallBreakdown:
    def test_total_sums_all_categories(self):
        stalls = StallBreakdown(
            rf_group_stalls=1,
            alu_input_stalls=2,
            alu_reexecutions=3,
            dcache_width_stalls=4,
            btb_memoization_stalls=5,
        )
        assert stalls.total == 15

    def test_default_is_zero(self):
        assert StallBreakdown().total == 0


class TestBranchStats:
    def test_direction_accuracy(self):
        stats = BranchStats(conditional_branches=100, direction_mispredicts=8)
        assert stats.direction_accuracy == pytest.approx(0.92)

    def test_btb_hit_rate(self):
        stats = BranchStats(btb_lookups=50, btb_misses=5)
        assert stats.btb_hit_rate == pytest.approx(0.9)

    def test_empty_stats(self):
        stats = BranchStats()
        assert stats.direction_accuracy == 0.0
        assert stats.btb_hit_rate == 0.0
