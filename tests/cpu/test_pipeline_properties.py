"""Property-based tests: the timing model on arbitrary valid traces."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cpu.config import baseline_config, full_3d_config
from repro.cpu.pipeline import simulate
from repro.isa.instruction import TraceInstruction
from repro.isa.opcodes import OpClass
from repro.isa.trace import Trace

_CODE = 0x40_0000
_HEAP = 0x2AAA_0000_0000


@st.composite
def mini_traces(draw):
    """A small, structurally valid committed-instruction trace."""
    length = draw(st.integers(min_value=4, max_value=60))
    instructions = []
    pc = _CODE
    for i in range(length):
        kind = draw(st.sampled_from(["alu", "load", "store", "branch", "fp"]))
        value = draw(st.integers(min_value=0, max_value=(1 << 64) - 1))
        reg = draw(st.integers(min_value=0, max_value=29))
        if kind == "alu":
            inst = TraceInstruction(
                pc=pc, op=OpClass.IALU, srcs=(reg,), dst=(reg + 1) % 30,
                result=value, src_values=(value,),
            )
        elif kind == "load":
            addr = _HEAP + draw(st.integers(min_value=0, max_value=1 << 16)) * 8
            inst = TraceInstruction(
                pc=pc, op=OpClass.LOAD, srcs=(reg,), dst=(reg + 1) % 30,
                result=value, src_values=(addr,), mem_addr=addr, mem_value=value,
            )
        elif kind == "store":
            addr = _HEAP + draw(st.integers(min_value=0, max_value=1 << 16)) * 8
            inst = TraceInstruction(
                pc=pc, op=OpClass.STORE, srcs=(reg, (reg + 1) % 30),
                src_values=(addr, value), mem_addr=addr, mem_value=value,
            )
        elif kind == "branch":
            taken = draw(st.booleans())
            # Forward target within the trace keeps the PC space small.
            target = pc + 4 * draw(st.integers(min_value=1, max_value=4))
            inst = TraceInstruction(
                pc=pc, op=OpClass.BRANCH, srcs=(reg,), src_values=(value,),
                taken=taken, target=target if taken else None,
            )
            if taken:
                pc = target - 4
        else:
            inst = TraceInstruction(
                pc=pc, op=OpClass.FADD, srcs=(40, 41), dst=42,
                result=value, src_values=(1, 2),
            )
        instructions.append(inst)
        pc += 4
    return Trace(name="prop", instructions=instructions)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(mini_traces())
def test_simulation_invariants_base(trace):
    result = simulate(trace, baseline_config())
    # Committed everything, took at least ceil(n / commit_width) cycles.
    assert result.instructions == len(trace)
    assert result.cycles >= len(trace) / baseline_config().commit_width
    # Every instruction passed rename exactly once.
    assert result.activity.module("rename").total == len(trace)
    # IPC bounded by machine width.
    assert result.ipc <= baseline_config().commit_width


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(mini_traces())
def test_simulation_invariants_3d(trace):
    result = simulate(trace, full_3d_config())
    assert result.instructions == len(trace)
    stats = result.width_stats
    assert stats is not None
    datapath = sum(1 for i in trace if i.op.is_integer_datapath)
    assert stats.predictions == datapath
    assert (stats.correct + stats.unsafe_mispredictions
            + stats.safe_mispredictions) == stats.predictions
    # Herded fractions are true fractions.
    for metric, value in result.herding.items():
        if metric.startswith("herded::") or metric.endswith("_herded") \
                or metric.endswith("herded_loads"):
            assert 0.0 <= value <= 1.0, metric


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(mini_traces())
def test_determinism_property(trace):
    a = simulate(trace, full_3d_config())
    b = simulate(trace, full_3d_config())
    assert a.cycles == b.cycles
    assert a.stalls.total == b.stalls.total


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(mini_traces())
def test_th_never_commits_different_work(trace):
    """Thermal Herding changes timing, never the committed instructions."""
    base = simulate(trace, baseline_config())
    herded = simulate(trace, full_3d_config())
    assert base.instructions == herded.instructions
