"""The columnar fast path is byte-identical to the reference loop.

``SIMULATOR_VERSION`` was *not* bumped for the columnar pre-decode: the
on-disk result cache serves entries across both paths, so equality must
hold at pickle-byte granularity — every counter, every dict's insertion
order, every stall attribution.  These tests pin that contract across
all six paper configurations, every width-predictor kind, herding on and
off, and degenerate trace shapes.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.cpu.config import WidthPredictorKind
from repro.cpu.pipeline import (
    ENV_COLUMNAR,
    TimingSimulator,
    columnar_enabled,
    simulate,
)
from repro.cpu.predecode import predecode
from repro.experiments.context import _all_configurations
from repro.isa.instruction import TraceInstruction
from repro.isa.opcodes import OpClass
from repro.isa.trace import Trace
from repro.workloads.suite import generate

WARMUP = 500


def _reference(trace, config, warmup=WARMUP):
    return TimingSimulator(config).run(trace, warmup=warmup)


def _columnar(trace, config, warmup=WARMUP):
    compiled = trace.compiled()
    assert compiled is not None
    return TimingSimulator(config, batched=True).run_compiled(
        predecode(compiled), warmup=warmup
    )


def _assert_identical(trace, config, warmup=WARMUP):
    ref = _reference(trace, config, warmup=warmup)
    col = _columnar(trace, config, warmup=warmup)
    assert pickle.dumps(col) == pickle.dumps(ref), config.name


class TestAllConfigurations:
    @pytest.mark.parametrize("label", list(_all_configurations()))
    def test_config_byte_identical(self, label, mpeg2_trace):
        """Covers herding off (Base/Pipe/Fast) and on (TH/3D/3D-noTH is
        off again) across the full paper configuration matrix."""
        config = _all_configurations()[label]
        _assert_identical(mpeg2_trace, config, warmup=2_000)

    def test_memory_bound_trace(self, yacr2_trace):
        configs = _all_configurations()
        _assert_identical(yacr2_trace, configs["3D"], warmup=2_000)
        _assert_identical(yacr2_trace, configs["Base"], warmup=2_000)


class TestPredictorKinds:
    @pytest.mark.parametrize("kind", list(WidthPredictorKind))
    def test_predictor_kind_byte_identical(self, kind, yacr2_trace):
        config = dataclasses.replace(
            _all_configurations()["TH"], width_predictor_kind=kind
        )
        _assert_identical(yacr2_trace, config, warmup=2_000)


class TestShortTraces:
    def test_tiny_trace(self):
        trace = generate("adpcm", length=40)
        _assert_identical(trace, _all_configurations()["TH"], warmup=0)

    def test_single_instruction(self):
        trace = Trace("one", [
            TraceInstruction(pc=0x1000, op=OpClass.IALU, dst=1, result=3),
        ])
        _assert_identical(trace, _all_configurations()["Base"], warmup=0)

    def test_warmup_bound_error_matches(self):
        trace = generate("adpcm", length=40)
        config = _all_configurations()["Base"]
        with pytest.raises(ValueError, match="warmup"):
            _reference(trace, config, warmup=40)
        with pytest.raises(ValueError, match="warmup"):
            _columnar(trace, config, warmup=40)


class TestDispatch:
    def test_simulate_uses_columnar_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_COLUMNAR, raising=False)
        assert columnar_enabled()

    def test_env_gate_disables_columnar(self, monkeypatch):
        for value in ("0", "off", "no", "false"):
            monkeypatch.setenv(ENV_COLUMNAR, value)
            assert not columnar_enabled()
        monkeypatch.setenv(ENV_COLUMNAR, "1")
        assert columnar_enabled()

    def test_simulate_accepts_compiled_trace(self):
        trace = generate("adpcm", length=600)
        config = _all_configurations()["TH"]
        via_trace = simulate(trace, config, warmup=100)
        via_compiled = simulate(trace.compiled(), config, warmup=100)
        assert pickle.dumps(via_compiled) == pickle.dumps(via_trace)

    def test_gated_simulate_matches_reference(self, monkeypatch):
        trace = generate("adpcm", length=600)
        config = _all_configurations()["Base"]
        monkeypatch.setenv(ENV_COLUMNAR, "0")
        gated = simulate(trace, config, warmup=100)
        monkeypatch.setenv(ENV_COLUMNAR, "1")
        columnar = simulate(trace, config, warmup=100)
        assert pickle.dumps(gated) == pickle.dumps(columnar)
