"""Interval power extraction: vectorized binning vs aggregate counters.

The interval buckets are built from ``np.add.reduceat`` over the same
masks the aggregate activity derives from, plus diffs of cumulative
tally snapshots — so they must sum *exactly* to the aggregate
:class:`ActivityCounters` for every configuration, and arming the
capture must not perturb the simulation result at all.
"""

import pickle

import numpy as np
import pytest

from repro.cpu.pipeline import TimingSimulator
from repro.cpu.predecode import predecode
from repro.cpu.wavefront import IntervalCapture, build_interval_series
from repro.experiments.context import _all_configurations
from repro.workloads.suite import generate

LENGTH = 4_000
WARMUP = 1_000
INTERVAL = 600

CONFIGS = _all_configurations()


@pytest.fixture(scope="module")
def pre():
    return predecode(generate("mpeg2", length=LENGTH).compiled())


def _run(pre, config, capture=None):
    return TimingSimulator(config, batched=True).run_compiled(
        pre, warmup=WARMUP, capture=capture
    )


@pytest.mark.parametrize("label", list(CONFIGS))
class TestIntervalBinning:
    def test_capture_does_not_perturb_result(self, pre, label):
        config = CONFIGS[label]
        baseline = _run(pre, config)
        armed = _run(pre, config, capture=IntervalCapture(INTERVAL))
        assert pickle.dumps(armed) == pickle.dumps(baseline)

    def test_buckets_sum_to_aggregate(self, pre, label):
        config = CONFIGS[label]
        capture = IntervalCapture(INTERVAL)
        result = _run(pre, config, capture=capture)
        series = build_interval_series(
            pre, config, WARMUP, True, capture, result.activity
        )
        assert len(series) == -(-(LENGTH - WARMUP) // INTERVAL)
        assert int(series.insts.sum()) == LENGTH - WARMUP
        assert int(series.cycles.sum()) == result.cycles
        aggregate = result.activity.modules()
        for counters in series.counters:
            assert list(counters.modules()) == list(aggregate)
        for name, module in aggregate.items():
            totals = [c.modules()[name].total for c in series.counters]
            tops = [c.modules()[name].top_only for c in series.counters]
            per_die = np.sum(
                [c.modules()[name].per_die for c in series.counters], axis=0
            )
            assert sum(totals) == module.total
            assert sum(tops) == module.top_only
            assert per_die.tolist() == module.per_die


def test_one_interval_equals_aggregate(pre):
    config = CONFIGS["3D"]
    capture = IntervalCapture(10**9)
    result = _run(pre, config, capture=capture)
    series = build_interval_series(
        pre, config, WARMUP, True, capture, result.activity
    )
    assert len(series) == 1
    assert pickle.dumps(series.counters[0]) == pickle.dumps(result.activity)


def test_capture_rejects_degenerate_windows():
    with pytest.raises(ValueError):
        IntervalCapture(0)
    capture = IntervalCapture(100)
    with pytest.raises(ValueError):
        capture.prepare(50, 50)
