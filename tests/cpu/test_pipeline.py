"""Tests for the out-of-order scoreboard timing model."""

import pytest

from repro.cpu.config import (
    baseline_config,
    fast_config,
    full_3d_config,
    pipeline_config,
    thermal_herding_config,
)
from repro.cpu.pipeline import TimingSimulator, simulate
from repro.isa.instruction import TraceInstruction
from repro.isa.opcodes import OpClass
from repro.isa.trace import Trace


def straightline_trace(n=200, pc0=0x40_0000):
    """Independent single-cycle ALU ops: the IPC ceiling case."""
    insts = [
        TraceInstruction(pc=pc0 + 4 * i, op=OpClass.IALU, srcs=(),
                         dst=(i % 8), result=i % 100)
        for i in range(n)
    ]
    return Trace(name="straight", instructions=insts)


def dependent_chain_trace(n=200, pc0=0x40_0000):
    """Every op depends on the previous one: IPC must approach 1."""
    insts = []
    value = 0
    for i in range(n):
        insts.append(TraceInstruction(
            pc=pc0 + 4 * i, op=OpClass.IALU, srcs=(1,), dst=1,
            result=(value := value + 1), src_values=(value - 1,),
        ))
    return Trace(name="chain", instructions=insts)


class TestStructuralBehaviour:
    def test_straightline_ipc_bounded_by_width(self):
        result = simulate(straightline_trace(), baseline_config())
        assert result.ipc <= baseline_config().commit_width

    def test_straightline_ipc_reasonably_high(self):
        result = simulate(straightline_trace(400), baseline_config())
        assert result.ipc > 1.5

    def test_dependent_chain_ipc_near_one(self):
        result = simulate(dependent_chain_trace(400), baseline_config())
        assert 0.5 < result.ipc <= 1.1

    def test_chain_slower_than_straightline(self):
        straight = simulate(straightline_trace(400), baseline_config())
        chain = simulate(dependent_chain_trace(400), baseline_config())
        assert chain.ipc < straight.ipc

    def test_fdiv_structural_hazard(self):
        """Back-to-back FDIVs serialize on the single unpipelined divider."""
        divs = [
            TraceInstruction(pc=0x1000 + 4 * i, op=OpClass.FDIV,
                             srcs=(), dst=40, result=1)
            for i in range(10)
        ]
        fills = straightline_trace(10, pc0=0x2000).instructions
        result = simulate(Trace(name="d", instructions=divs + fills), baseline_config())
        from repro.isa.opcodes import OP_LATENCY
        assert result.cycles >= 10 * OP_LATENCY[OpClass.FDIV]


class TestDeterminismAndMetrics:
    def test_deterministic(self, mpeg2_trace):
        a = simulate(mpeg2_trace, baseline_config())
        b = simulate(mpeg2_trace, baseline_config())
        assert a.cycles == b.cycles
        assert a.activity.total_accesses() == b.activity.total_accesses()

    def test_metrics_consistent(self, base_run):
        assert base_run.ipc == pytest.approx(base_run.instructions / base_run.cycles)
        assert base_run.ipns == pytest.approx(base_run.ipc * base_run.clock_ghz)
        assert base_run.time_ns == pytest.approx(base_run.cycles / base_run.clock_ghz)

    def test_summary_text(self, base_run):
        assert "IPC" in base_run.summary()

    def test_cache_stats_present(self, base_run):
        for name in ("l1i", "l1d", "l2", "itlb", "dtlb"):
            assert name in base_run.cache_stats

    def test_activity_modules_present(self, base_run):
        modules = base_run.activity.modules()
        for name in ("rename", "register_file", "alu", "l1_icache", "l1_dcache"):
            assert name in modules, name


class TestWarmup:
    def test_warmup_excluded_from_instruction_count(self, mpeg2_trace):
        result = simulate(mpeg2_trace, baseline_config(), warmup=2000)
        assert result.instructions == len(mpeg2_trace) - 2000

    def test_warmup_improves_miss_rates(self, mpeg2_trace):
        cold = simulate(mpeg2_trace, baseline_config(), warmup=0)
        warm = simulate(mpeg2_trace, baseline_config(), warmup=len(mpeg2_trace) // 2)
        assert warm.cache_stats["l1d"].miss_rate <= cold.cache_stats["l1d"].miss_rate

    def test_warmup_must_be_smaller_than_trace(self, mpeg2_trace):
        with pytest.raises(ValueError):
            simulate(mpeg2_trace, baseline_config(), warmup=len(mpeg2_trace))


class TestConfigurationOrdering:
    """Figure 8's qualitative relations between the five configurations."""

    def test_pipe_improves_ipc(self, mpeg2_trace):
        base = simulate(mpeg2_trace, baseline_config(), warmup=2000)
        pipe = simulate(mpeg2_trace, pipeline_config(), warmup=2000)
        assert pipe.ipc >= base.ipc

    def test_fast_reduces_ipc(self, mpeg2_trace, base_run):
        fast = simulate(mpeg2_trace, fast_config(), warmup=2000)
        assert fast.ipc <= base_run.ipc

    def test_fast_still_faster_wallclock(self, mpeg2_trace, base_run):
        fast = simulate(mpeg2_trace, fast_config(), warmup=2000)
        assert fast.ipns > base_run.ipns

    def test_th_ipc_close_to_base(self, base_run, th_run):
        """Width misprediction stalls cost at most a few percent IPC."""
        assert th_run.ipc >= 0.95 * base_run.ipc

    def test_3d_speedup_shape(self, mpeg2_trace, base_run, full_3d_run):
        speedup = full_3d_run.ipns / base_run.ipns
        assert 1.05 <= speedup <= 1.8


class TestThermalHerdingIntegration:
    def test_width_stats_only_with_th(self, base_run, th_run):
        assert base_run.width_stats is None
        assert th_run.width_stats is not None

    def test_width_accuracy_high(self, th_run):
        assert th_run.width_stats.accuracy > 0.85

    def test_herding_metrics_present(self, th_run):
        for key in ("pam_herded", "dcache_herded_loads",
                    "scheduler_dies_per_broadcast", "btb_herded"):
            assert key in th_run.herding, key

    def test_herding_reduces_datapath_activity(self, base_run, th_run):
        """The TH run confines a large share of RF accesses to the top die."""
        base_rf = base_run.activity.module("register_file")
        th_rf = th_run.activity.module("register_file")
        assert base_rf.herded_fraction == 0.0
        assert th_rf.herded_fraction > 0.2

    def test_stall_accounting_nonnegative(self, th_run):
        stalls = th_run.stalls
        assert stalls.total >= 0
        assert stalls.rf_group_stalls >= 0
        assert stalls.dcache_width_stalls >= 0

    def test_scheduler_broadcasts_mostly_top_die(self, th_run):
        assert th_run.herding["scheduler_dies_per_broadcast"] < 2.5
