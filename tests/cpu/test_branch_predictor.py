"""Tests for the hybrid direction predictor and front-end machinery."""

import pytest

from repro.core.activity import ActivityCounters
from repro.cpu.branch_predictor import FrontEndPredictor, HybridPredictor, _CounterTable
from repro.isa.opcodes import OpClass


class TestCounterTable:
    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            _CounterTable(100)

    def test_initial_weakly_not_taken(self):
        table = _CounterTable(16)
        assert not table.predict(0)

    def test_saturation(self):
        table = _CounterTable(16)
        for _ in range(10):
            table.update(3, True)
        assert table.predict(3)
        table.update(3, False)
        assert table.predict(3)  # hysteresis


class TestHybridPredictor:
    def test_learns_always_taken(self):
        predictor = HybridPredictor()
        for _ in range(8):
            predictor.update(0x100, True)
        assert predictor.predict(0x100)

    def test_learns_always_not_taken(self):
        predictor = HybridPredictor()
        for _ in range(8):
            predictor.update(0x100, False)
        assert not predictor.predict(0x100)

    def test_learns_periodic_pattern(self):
        """A period-4 pattern (TTTN) is learnable via local history."""
        predictor = HybridPredictor()
        pattern = [True, True, True, False]
        # Train for several periods.
        for i in range(200):
            predictor.update(0x200, pattern[i % 4])
        correct = 0
        for i in range(200, 240):
            outcome = pattern[i % 4]
            if predictor.predict(0x200) == outcome:
                correct += 1
            predictor.update(0x200, outcome)
        assert correct / 40 > 0.9

    def test_biased_branch_tracks_bias(self):
        import random
        rng = random.Random(3)
        predictor = HybridPredictor()
        correct = 0
        total = 400
        for _ in range(total):
            outcome = rng.random() < 0.85
            if predictor.predict(0x300) == outcome:
                correct += 1
            predictor.update(0x300, outcome)
        assert correct / total > 0.75


class TestFrontEnd:
    def make(self, thermal_herding=False):
        return FrontEndPredictor(ActivityCounters(), thermal_herding=thermal_herding)

    def test_conditional_trains_and_counts(self):
        frontend = self.make()
        for _ in range(6):
            frontend.process(OpClass.BRANCH, 0x1000, True, 0x1100)
        assert frontend.stats.conditional_branches == 6
        outcome = frontend.process(OpClass.BRANCH, 0x1000, True, 0x1100)
        assert not outcome.mispredicted

    def test_first_taken_branch_mispredicts(self):
        """Counters start weakly not-taken, so a first taken branch misses."""
        frontend = self.make()
        outcome = frontend.process(OpClass.BRANCH, 0x1000, True, 0x1100)
        assert outcome.mispredicted

    def test_btb_learns_targets(self):
        frontend = self.make()
        frontend.process(OpClass.JUMP, 0x1000, True, 0x2000)
        outcome = frontend.process(OpClass.JUMP, 0x1000, True, 0x2000)
        assert outcome.target_known

    def test_call_return_ras(self):
        frontend = self.make()
        frontend.process(OpClass.CALL, 0x1000, True, 0x8000)
        outcome = frontend.process(OpClass.RETURN, 0x8010, True, 0x1004)
        assert not outcome.mispredicted
        assert frontend.stats.ras_mispredicts == 0

    def test_return_without_call_mispredicts(self):
        frontend = self.make()
        outcome = frontend.process(OpClass.RETURN, 0x8010, True, 0x1234)
        assert outcome.mispredicted
        assert frontend.stats.ras_mispredicts == 1

    def test_nested_calls(self):
        frontend = self.make()
        frontend.process(OpClass.CALL, 0x1000, True, 0x8000)
        frontend.process(OpClass.CALL, 0x8004, True, 0x9000)
        inner = frontend.process(OpClass.RETURN, 0x9010, True, 0x8008)
        outer = frontend.process(OpClass.RETURN, 0x8010, True, 0x1004)
        assert not inner.mispredicted
        assert not outer.mispredicted

    def test_memoized_btb_far_target_bubble(self):
        frontend = self.make(thermal_herding=True)
        far = 0x7F00_0000_0000
        frontend.process(OpClass.JUMP, 0x1000, True, far)  # allocate
        outcome = frontend.process(OpClass.JUMP, 0x1000, True, far)
        assert outcome.extra_bubbles == 1

    def test_memoized_btb_near_target_free(self):
        frontend = self.make(thermal_herding=True)
        frontend.process(OpClass.JUMP, 0x1000, True, 0x1400)
        outcome = frontend.process(OpClass.JUMP, 0x1000, True, 0x1400)
        assert outcome.extra_bubbles == 0

    def test_split_arrays_active_with_th(self):
        frontend = self.make(thermal_herding=True)
        frontend.process(OpClass.BRANCH, 0x1000, False, None)
        assert frontend.split_arrays is not None
        assert frontend.split_arrays.predictions == 1
        assert frontend.split_arrays.updates == 1
