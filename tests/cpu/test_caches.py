"""Tests for the cache/TLB models and the memory hierarchy."""

import pytest

from repro.core.activity import ActivityCounters
from repro.cpu.caches import (
    MemoryHierarchy,
    SetAssociativeCache,
    TLB,
    build_hierarchy,
)
from repro.cpu.config import baseline_config


def small_cache(assoc=2):
    return SetAssociativeCache("c", size_bytes=assoc * 4 * 64, assoc=assoc, line_bytes=64)


class TestSetAssociativeCache:
    def test_first_access_misses(self):
        cache = small_cache()
        assert not cache.access(0x1000)

    def test_second_access_hits(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.access(0x1000)

    def test_same_line_hits(self):
        cache = small_cache()
        cache.access(0x1000)
        assert cache.access(0x103F)

    def test_next_line_misses(self):
        cache = small_cache()
        cache.access(0x1000)
        assert not cache.access(0x1040)

    def test_lru_eviction(self):
        cache = small_cache(assoc=2)
        sets = cache.num_sets
        conflicting = [0x0, sets * 64, 2 * sets * 64]  # same set, 3 tags
        cache.access(conflicting[0])
        cache.access(conflicting[1])
        cache.access(conflicting[2])  # evicts [0]
        assert not cache.access(conflicting[0])

    def test_lru_update_on_hit(self):
        cache = small_cache(assoc=2)
        sets = cache.num_sets
        a, b, c = 0x0, sets * 64, 2 * sets * 64
        cache.access(a)
        cache.access(b)
        cache.access(a)  # a becomes MRU
        cache.access(c)  # evicts b
        assert cache.access(a)
        assert not cache.access(b)

    def test_probe_does_not_touch_stats(self):
        cache = small_cache()
        cache.access(0x1000)
        before = cache.stats.accesses
        assert cache.probe(0x1000)
        assert not cache.probe(0x9999_0000)
        assert cache.stats.accesses == before

    def test_install_silent(self):
        cache = small_cache()
        cache.install(0x1000)
        assert cache.stats.accesses == 0
        assert cache.access(0x1000)

    def test_install_idempotent(self):
        cache = small_cache(assoc=2)
        cache.access(0x0)
        cache.install(0x0)  # must not duplicate / evict
        sets = cache.num_sets
        cache.access(sets * 64)
        assert cache.access(0x0)

    def test_stats(self):
        cache = small_cache()
        cache.access(0x0)
        cache.access(0x0)
        cache.access(0x4000_0000)
        stats = cache.stats
        assert stats.accesses == 3
        assert stats.misses == 2
        assert stats.hits == 1
        assert stats.miss_rate == pytest.approx(2 / 3)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache("bad", size_bytes=0, assoc=2, line_bytes=64)
        with pytest.raises(ValueError):
            SetAssociativeCache("bad", size_bytes=100, assoc=3, line_bytes=64)


class TestTLB:
    def test_page_granularity(self):
        tlb = TLB("t", entries=16, assoc=4, page_bytes=4096)
        tlb.access(0x1000)
        assert tlb.access(0x1FFF)
        assert not tlb.access(0x2000)


class TestMemoryHierarchy:
    @pytest.fixture
    def hierarchy(self):
        return build_hierarchy(ActivityCounters(), baseline_config())

    def test_l1_hit_latency(self, hierarchy):
        hierarchy.load(0x1000)
        result = hierarchy.load(0x1000)
        assert result.cycles == hierarchy.l1_latency
        assert result.level == "l1"

    def test_cold_miss_goes_to_dram(self, hierarchy):
        result = hierarchy.load(0x5000_0000)
        assert result.level == "dram"
        assert result.cycles >= hierarchy.dram_cycles

    def test_l2_hit_after_l1_eviction(self, hierarchy):
        cfg = baseline_config()
        # Touch enough conflicting lines to evict from L1 but stay in L2.
        base = 0x10_0000
        stride = hierarchy.l1d.num_sets * 64
        addrs = [base + i * stride for i in range(cfg.l1d_assoc + 2)]
        for addr in addrs:
            hierarchy.load(addr)
        result = hierarchy.load(addrs[0])
        assert result.level == "l2"
        assert result.cycles == hierarchy.l1_latency + hierarchy.l2_latency

    def test_next_line_prefetch(self, hierarchy):
        hierarchy.load(0x8000)
        result = hierarchy.load(0x8040)  # next line, prefetched
        assert result.level == "l1"

    def test_prefetch_covers_streams(self, hierarchy):
        hierarchy.load(0x20_0000)
        misses = 0
        for i in range(1, 64):
            if hierarchy.load(0x20_0000 + i * 8).level != "l1":
                misses += 1
        assert misses == 0

    def test_tlb_miss_penalty(self, hierarchy):
        first = hierarchy.load(0x77_0000)
        assert first.tlb_miss
        assert first.cycles >= hierarchy.tlb_miss_penalty
        again = hierarchy.load(0x77_0000)
        assert not again.tlb_miss

    def test_instruction_fetch_paths(self, hierarchy):
        first = hierarchy.instruction_fetch(0x40_0000)
        assert first.level == "dram"
        hit = hierarchy.instruction_fetch(0x40_0000)
        assert hit.level == "l1"

    def test_store_is_non_blocking(self, hierarchy):
        result = hierarchy.store(0x99_0000)
        assert result.cycles == 0

    def test_activity_recorded(self):
        counters = ActivityCounters()
        hierarchy = build_hierarchy(counters, baseline_config())
        hierarchy.load(0x4000)
        assert counters.module("dtlb").total == 1
        assert counters.module("l2_cache").total == 1
        assert counters.module("dram").total == 1
