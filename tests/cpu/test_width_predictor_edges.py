"""Width-predictor saturating-counter edge cases.

The batched wavefront loop inlines the predictor's counter arithmetic
(table reads, saturating increments/decrements, the in-flight correction
that pins an entry to max) instead of calling the model.  These tests pin
the counter state machine at its boundaries — saturation at both ends,
the threshold flip, index aliasing in tiny tables — and check that the
inlined update stream stays in lock-step with the model, including across
the warmup reset for every predictor kind.
"""

from __future__ import annotations

import dataclasses
import pickle
import random

import pytest

from repro.core.width_prediction import WidthPredictor
from repro.cpu.config import WidthPredictorKind
from repro.cpu.pipeline import TimingSimulator
from repro.cpu.predecode import predecode
from repro.experiments.context import _all_configurations
from repro.workloads.suite import generate


class TestCounterSaturation:
    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_saturates_at_max(self, bits):
        predictor = WidthPredictor(table_size=4, counter_bits=bits)
        max_count = (1 << bits) - 1
        for _ in range(3 * max_count):
            predictor.record_and_train(0x40, predicted_low=False, actual_low=False)
        assert predictor._table[predictor._index(0x40)] == max_count
        assert not predictor.predict_low_width(0x40)

    @pytest.mark.parametrize("bits", [1, 2, 3])
    def test_saturates_at_zero(self, bits):
        predictor = WidthPredictor(table_size=4, counter_bits=bits)
        for _ in range(3 * (1 << bits)):
            predictor.record_and_train(0x40, predicted_low=True, actual_low=True)
        assert predictor._table[predictor._index(0x40)] == 0
        assert predictor.predict_low_width(0x40)

    def test_threshold_flip_is_exact(self):
        """With 2-bit counters the prediction flips at exactly 2 -> 1."""
        predictor = WidthPredictor(table_size=4, counter_bits=2)
        # Initialized to the threshold: weakly full width.
        assert not predictor.predict_low_width(0x40)
        predictor.record_and_train(0x40, predicted_low=False, actual_low=True)
        assert predictor.predict_low_width(0x40)
        predictor.record_and_train(0x40, predicted_low=True, actual_low=False)
        assert not predictor.predict_low_width(0x40)

    def test_correction_pins_to_max(self):
        predictor = WidthPredictor(table_size=4, counter_bits=2)
        for _ in range(4):
            predictor.record_and_train(0x40, predicted_low=False, actual_low=True)
        assert predictor.predict_low_width(0x40)
        predictor.correct_prediction(0x40)
        assert predictor._table[predictor._index(0x40)] == predictor._max_count
        assert not predictor.predict_low_width(0x40)

    def test_index_aliasing_in_tiny_table(self):
        """PCs 4 entries apart share a counter (the wraparound case)."""
        predictor = WidthPredictor(table_size=4, counter_bits=2)
        assert predictor._index(0x40) == predictor._index(0x40 + 4 * 4)
        predictor.record_and_train(0x40, predicted_low=False, actual_low=True)
        predictor.record_and_train(0x40 + 16, predicted_low=False, actual_low=True)
        # Both updates landed on one counter: threshold(2) - 2 == 0.
        assert predictor._table[predictor._index(0x40)] == 0


class TestInlinedCounterEquivalence:
    """The wavefront loop's inlined arithmetic == the model, step by step."""

    @pytest.mark.parametrize("bits", [1, 2])
    def test_random_stream_with_corrections(self, bits):
        table_size = 8
        model = WidthPredictor(table_size=table_size, counter_bits=bits)
        # The inlined mirror, exactly as run_compiled maintains it.
        table = [1 << (bits - 1)] * table_size
        threshold = 1 << (bits - 1)
        max_count = (1 << bits) - 1
        mask = table_size - 1

        rng = random.Random(1234)
        for _ in range(2_000):
            pc = rng.randrange(0, 64) * 4
            actual = rng.random() < 0.5
            index = (pc >> 2) & mask

            predicted_model = model.predict_low_width(pc)
            predicted_inline = table[index] < threshold
            assert predicted_inline == predicted_model

            if predicted_inline and rng.random() < 0.1:
                # The register file's in-flight correction path.
                model.correct_prediction(pc)
                table[index] = max_count

            model.record_and_train(pc, predicted_model, actual)
            counter = table[index]
            if actual:
                if counter > 0:
                    table[index] = counter - 1
            elif counter < max_count:
                table[index] = counter + 1

            assert table == model._table


class TestPerKindResetAtWarmup:
    """Across the warmup boundary, stats reset but predictor *state*
    (counters, static overrides) persists — per kind, on both paths."""

    @pytest.fixture(scope="class")
    def trace(self):
        return generate("yacr2", length=4_000)

    @pytest.mark.parametrize("kind", list(WidthPredictorKind))
    def test_tiny_table_byte_identical(self, kind, trace):
        """4-entry, 1-bit tables maximize aliasing and saturation flips;
        warmup crosses the reset in a heavily-wrapped counter state."""
        config = dataclasses.replace(
            _all_configurations()["TH"],
            width_predictor_kind=kind,
            width_predictor_entries=4,
            width_counter_bits=1,
        )
        ref = TimingSimulator(config).run(trace, warmup=1_000)
        compiled = trace.compiled()
        assert compiled is not None
        col = TimingSimulator(config, batched=True).run_compiled(
            predecode(compiled), warmup=1_000
        )
        assert pickle.dumps(col) == pickle.dumps(ref)

    @pytest.mark.parametrize("kind", list(WidthPredictorKind))
    def test_stats_cover_post_warmup_only(self, kind, trace):
        config = dataclasses.replace(
            _all_configurations()["TH"], width_predictor_kind=kind
        )
        compiled = trace.compiled()
        pre = predecode(compiled)
        full = TimingSimulator(config, batched=True).run_compiled(pre, warmup=0)
        warmed = TimingSimulator(config, batched=True).run_compiled(
            pre, warmup=2_000
        )
        assert full.width_stats.predictions > warmed.width_stats.predictions
        assert warmed.width_stats.predictions == sum(
            1 for i in range(2_000, pre.n) if pre.is_intdp[i]
        )
