"""Tests for the approximate CPI stack."""

import pytest

from repro.cpu.config import baseline_config, full_3d_config
from repro.cpu.pipeline import simulate
from repro.workloads.microbench import narrow_alu, pointer_chase, width_flip
from repro.workloads.suite import generate


class TestAccounting:
    def test_stack_sums_to_cycles(self, base_run):
        assert sum(base_run.cpi_stack.values()) == base_run.cycles

    def test_breakdown_sums_to_cpi(self, base_run):
        total = sum(base_run.cpi_breakdown().values())
        assert total == pytest.approx(base_run.cycles / base_run.instructions)

    def test_categories_known(self, base_run):
        known = {"base", "branch", "memory", "frontend", "dependency",
                 "structural", "width"}
        assert set(base_run.cpi_stack) <= known

    def test_format(self, base_run):
        assert "CPI stack" in base_run.format_cpi_stack()

    def test_empty_result_safe(self):
        from repro.cpu.results import SimulationResult
        from repro.core.activity import ActivityCounters
        from repro.cpu.branch_predictor import BranchStats
        empty = SimulationResult(
            benchmark="x", benchmark_class="c", config_name="base",
            clock_ghz=1.0, instructions=0, cycles=0,
            activity=ActivityCounters(), branch_stats=BranchStats(),
        )
        assert empty.cpi_breakdown() == {}


class TestAttributionShape:
    def test_memory_bound_app_blames_memory(self):
        trace = generate("mcf", length=8000)
        result = simulate(trace, baseline_config(), warmup=2500)
        stack = result.cpi_breakdown()
        assert stack.get("memory", 0.0) == max(stack.values())

    def test_chase_kernel_blames_memory_or_dependency(self):
        result = simulate(pointer_chase(128), baseline_config())
        stack = result.cpi_breakdown()
        blamed = stack.get("memory", 0.0) + stack.get("dependency", 0.0)
        assert blamed > 0.5 * sum(stack.values())

    def test_clean_kernel_mostly_base(self):
        result = simulate(narrow_alu(128), baseline_config())
        stack = result.cpi_breakdown()
        assert stack.get("base", 0.0) >= 0.4 * sum(stack.values())

    def test_width_category_only_under_th(self):
        trace = width_flip(128)
        base = simulate(trace, baseline_config())
        herded = simulate(trace, full_3d_config())
        assert "width" not in base.cpi_stack
        assert herded.cpi_stack.get("width", 0) > 0

    def test_warmup_resets_stack(self):
        trace = generate("mpeg2", length=8000)
        result = simulate(trace, baseline_config(), warmup=4000)
        assert sum(result.cpi_stack.values()) == result.cycles
