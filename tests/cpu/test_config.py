"""Tests for the processor configurations."""

import pytest

from repro.core.dcache_encoding import EncodingScheme
from repro.cpu.config import (
    baseline_config,
    fast_config,
    full_3d_config,
    paper_configurations,
    pipeline_config,
    thermal_herding_config,
)


class TestBaseline:
    def test_table1_parameters(self):
        cfg = baseline_config()
        assert cfg.clock_ghz == 2.66
        assert cfg.fetch_width == 4
        assert cfg.issue_width == 6
        assert cfg.rob_size == 96
        assert cfg.rs_size == 32
        assert cfg.lq_size == 32
        assert cfg.sq_size == 20
        assert cfg.l1d_size == 32 << 10
        assert cfg.l2_size == 4 << 20
        assert cfg.btb_entries == 2048
        assert cfg.ibtb_entries == 512
        assert not cfg.thermal_herding
        assert not cfg.pipeline_optimized

    def test_mispredict_penalty_at_least_14(self):
        """Table 1: minimum 14-cycle branch misprediction penalty."""
        assert baseline_config().branch_mispredict_min_cycles >= 14

    def test_dram_cycles_scale_with_clock(self):
        base = baseline_config()
        fast = fast_config()
        assert fast.dram_cycles > base.dram_cycles
        assert base.dram_cycles == round(base.dram_latency_ns * base.clock_ghz)


class TestVariants:
    def test_th_only_toggles_herding(self):
        cfg = thermal_herding_config()
        assert cfg.thermal_herding
        assert not cfg.pipeline_optimized
        assert cfg.clock_ghz == baseline_config().clock_ghz

    def test_pipe_reduces_latencies(self):
        cfg = pipeline_config().resolved()
        base = baseline_config().resolved()
        assert cfg.l2_latency < base.l2_latency
        assert cfg.front_depth < base.front_depth

    def test_resolved_is_idempotent_for_base(self):
        cfg = baseline_config()
        assert cfg.resolved() is cfg

    def test_fast_is_microarchitecturally_identical(self):
        base = baseline_config()
        fast = fast_config()
        assert fast.clock_ghz > base.clock_ghz
        assert fast.l2_latency == base.l2_latency
        assert not fast.thermal_herding

    def test_3d_combines_everything(self):
        cfg = full_3d_config()
        assert cfg.thermal_herding
        assert cfg.pipeline_optimized
        assert cfg.clock_ghz > 3.5

    def test_3d_clock_from_circuit_model(self):
        """The 3D clock derives from the critical loops, ~1.45x faster."""
        ratio = full_3d_config().clock_ghz / baseline_config().clock_ghz
        assert 1.40 <= ratio <= 1.55

    def test_default_encoding_is_two_bit(self):
        assert full_3d_config().dcache_encoding is EncodingScheme.TWO_BIT


class TestRegistry:
    def test_five_configurations(self):
        configs = paper_configurations()
        assert set(configs) == {"Base", "TH", "Pipe", "Fast", "3D"}

    def test_descriptions_present(self):
        for pc in paper_configurations().values():
            assert pc.description
