"""Tests for the clock frequency derivation (Section 5.1.1)."""

import pytest

from repro.circuits.frequency import (
    CriticalLoops,
    derive_frequencies,
    extract_loops,
)


class TestCriticalLoops:
    def test_cycle_is_max(self):
        loops = CriticalLoops(
            wakeup_select_2d_ps=300.0, wakeup_select_3d_ps=200.0,
            alu_bypass_2d_ps=350.0, alu_bypass_3d_ps=180.0,
        )
        assert loops.cycle_2d_ps == 350.0
        assert loops.cycle_3d_ps == 200.0

    def test_extract_requires_loops(self):
        with pytest.raises(KeyError):
            extract_loops({})


class TestDerivedFrequencies:
    def test_baseline_frequency(self, blocks):
        plan = derive_frequencies(blocks)
        assert plan.f2d_ghz == pytest.approx(2.66, rel=0.03)

    def test_3d_frequency(self, blocks):
        """Paper: 3.93 GHz, a 47.9% increase."""
        plan = derive_frequencies(blocks)
        assert plan.f3d_ghz == pytest.approx(3.93, rel=0.05)

    def test_speedup_range(self, blocks):
        plan = derive_frequencies(blocks)
        assert 1.40 <= plan.speedup <= 1.55

    def test_default_blocks(self):
        plan = derive_frequencies()
        assert plan.f3d_ghz > plan.f2d_ghz

    def test_loops_consistent_with_blocks(self, blocks):
        plan = derive_frequencies(blocks)
        ws = blocks["wakeup_select_loop"].timing
        assert plan.loops.wakeup_select_2d_ps == ws.latency_2d_ps
