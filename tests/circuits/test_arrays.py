"""Tests for the SRAM array model and its 3D partitioning modes."""

import pytest

from repro.circuits.arrays import ArrayModel, PartitionMode


def rf_array(**kwargs):
    defaults = dict(name="rf", entries=96, bits_per_entry=64,
                    read_ports=8, write_ports=4)
    defaults.update(kwargs)
    return ArrayModel(**defaults)


def cache_array(**kwargs):
    defaults = dict(name="cache", entries=512, bits_per_entry=512, assoc=8)
    defaults.update(kwargs)
    return ArrayModel(**defaults)


class TestValidation:
    def test_rejects_zero_entries(self):
        with pytest.raises(ValueError):
            ArrayModel("bad", entries=0, bits_per_entry=8)

    def test_rejects_zero_dies(self):
        with pytest.raises(ValueError):
            ArrayModel("bad", entries=8, bits_per_entry=8, dies=0)

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            rf_array().evaluate("bogus")


class TestLatency:
    @pytest.mark.parametrize("mode", [
        PartitionMode.WORD_PARTITIONED,
        PartitionMode.ENTRY_STACKED,
        PartitionMode.FOLDED,
    ])
    def test_3d_is_faster(self, mode):
        array = cache_array()
        planar = array.evaluate(PartitionMode.PLANAR)
        stacked = array.evaluate(mode)
        assert stacked.latency_ps < planar.latency_ps

    def test_single_die_degenerates_to_planar(self):
        array = rf_array(dies=1)
        planar = array.evaluate(PartitionMode.PLANAR)
        stacked = array.evaluate(PartitionMode.WORD_PARTITIONED)
        assert stacked.latency_ps == planar.latency_ps
        assert stacked.energy_full_pj == planar.energy_full_pj

    def test_bigger_arrays_gain_more(self):
        """Large arrays benefit more from 3D (paper Section 5.1.1)."""
        small = ArrayModel("s", entries=128, bits_per_entry=64)
        large = ArrayModel("l", entries=65536, bits_per_entry=512, assoc=16)
        gain = lambda a: 1 - (a.evaluate(PartitionMode.FOLDED).latency_ps
                              / a.evaluate(PartitionMode.PLANAR).latency_ps)
        assert gain(large) > gain(small)

    def test_latency_positive(self):
        for mode in PartitionMode:
            assert rf_array().evaluate(mode).latency_ps > 0


class TestEnergy:
    def test_top_only_cheaper_for_word_partitioned(self):
        timing = rf_array().evaluate(PartitionMode.WORD_PARTITIONED)
        assert timing.energy_top_pj < timing.energy_full_pj

    def test_top_only_ratio_near_quarter(self):
        """Gating 3 of 4 dies should save very roughly 75% of the access."""
        timing = rf_array().evaluate(PartitionMode.WORD_PARTITIONED)
        ratio = timing.energy_top_pj / timing.energy_full_pj
        assert 0.10 < ratio < 0.55

    def test_entry_stacked_saves_energy(self):
        array = ArrayModel("tlb", entries=256, bits_per_entry=64, assoc=4)
        planar = array.evaluate(PartitionMode.PLANAR)
        stacked = array.evaluate(PartitionMode.ENTRY_STACKED)
        assert stacked.energy_full_pj < planar.energy_full_pj

    def test_folded_saves_energy(self):
        array = cache_array()
        planar = array.evaluate(PartitionMode.PLANAR)
        stacked = array.evaluate(PartitionMode.FOLDED)
        assert stacked.energy_full_pj < planar.energy_full_pj

    def test_word_partitioned_full_access_close_to_planar(self):
        """A full-width access reads the same cells; only routing saves."""
        timing3d = rf_array().evaluate(PartitionMode.WORD_PARTITIONED)
        timing2d = rf_array().evaluate(PartitionMode.PLANAR)
        assert 0.5 < timing3d.energy_full_pj / timing2d.energy_full_pj <= 1.05

    def test_energies_positive(self):
        for mode in PartitionMode:
            timing = cache_array().evaluate(mode)
            assert timing.energy_full_pj > 0
            assert timing.energy_top_pj > 0


class TestGeometry:
    def test_footprint_folds_by_die_count(self):
        array = cache_array()
        planar = array.evaluate(PartitionMode.PLANAR)
        stacked = array.evaluate(PartitionMode.FOLDED)
        assert stacked.footprint_mm2 == pytest.approx(planar.area_mm2 / 4, rel=0.2)

    def test_ports_increase_area(self):
        small = ArrayModel("a", entries=96, bits_per_entry=64).evaluate()
        big = rf_array().evaluate()
        assert big.area_mm2 > small.area_mm2
