"""Tests for the wire delay/energy models."""

import pytest
from hypothesis import given, strategies as st

from repro.circuits.technology import TECH_65NM
from repro.circuits.wires import (
    repeated_wire_delay_ps,
    unrepeated_wire_delay_ps,
    wire_cap_ff,
    wire_delay_ps,
    wire_energy_pj,
)

lengths = st.floats(min_value=0.0, max_value=50_000.0, allow_nan=False)


class TestDelayModels:
    def test_zero_length(self):
        assert wire_delay_ps(0.0) == 0.0

    def test_negative_rejected(self):
        for fn in (wire_delay_ps, repeated_wire_delay_ps, unrepeated_wire_delay_ps):
            with pytest.raises(ValueError):
                fn(-1.0)

    def test_unrepeated_quadratic(self):
        d1 = unrepeated_wire_delay_ps(100.0)
        d2 = unrepeated_wire_delay_ps(200.0)
        assert d2 == pytest.approx(4 * d1)

    def test_repeated_linear(self):
        d1 = repeated_wire_delay_ps(1000.0)
        d2 = repeated_wire_delay_ps(2000.0)
        assert d2 == pytest.approx(2 * d1)

    def test_short_wires_use_quadratic(self):
        # For very short wires the quadratic is below the linear model.
        length = 50.0
        assert wire_delay_ps(length) == unrepeated_wire_delay_ps(length)

    def test_long_wires_use_repeated(self):
        length = 5000.0
        assert wire_delay_ps(length) == repeated_wire_delay_ps(length)

    @given(lengths)
    def test_best_of_both(self, length):
        assert wire_delay_ps(length) == min(
            unrepeated_wire_delay_ps(length), repeated_wire_delay_ps(length)
        )

    @given(st.tuples(lengths, lengths))
    def test_monotone_in_length(self, pair):
        a, b = sorted(pair)
        assert wire_delay_ps(a) <= wire_delay_ps(b) + 1e-12


class TestEnergy:
    def test_cap_linear(self):
        assert wire_cap_ff(2000.0) == pytest.approx(2 * wire_cap_ff(1000.0))

    def test_energy_cv2(self):
        length = 1000.0
        expected = wire_cap_ff(length) * 1e-15 * TECH_65NM.vdd ** 2 * 1e12
        assert wire_energy_pj(length) == pytest.approx(expected)

    def test_activity_scales(self):
        assert wire_energy_pj(1000.0, activity=0.5) == pytest.approx(
            0.5 * wire_energy_pj(1000.0)
        )

    def test_activity_bounds(self):
        with pytest.raises(ValueError):
            wire_energy_pj(100.0, activity=1.5)
        with pytest.raises(ValueError):
            wire_energy_pj(100.0, activity=-0.1)
