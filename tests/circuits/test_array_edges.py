"""Edge-case tests for the SRAM array model's banking and modes."""

import pytest

from repro.circuits.arrays import ArrayModel, PartitionMode


class TestBanking:
    def test_huge_array_banks(self):
        """A 4MB-class array must split into subarrays (bounded wordlines)."""
        big = ArrayModel("big", entries=65536, bits_per_entry=512, assoc=16)
        small = ArrayModel("small", entries=256, bits_per_entry=512)
        # Latency grows sublinearly thanks to banking.
        ratio = (big.evaluate(PartitionMode.PLANAR).latency_ps
                 / small.evaluate(PartitionMode.PLANAR).latency_ps)
        assert ratio < 256 / 4  # far below linear scaling

    def test_single_entry_array(self):
        tiny = ArrayModel("tiny", entries=1, bits_per_entry=8)
        timing = tiny.evaluate(PartitionMode.PLANAR)
        assert timing.latency_ps > 0
        assert timing.energy_full_pj > 0

    def test_entry_stacked_on_tiny_array_clamps(self):
        tiny = ArrayModel("tiny", entries=2, bits_per_entry=8, dies=4)
        timing = tiny.evaluate(PartitionMode.ENTRY_STACKED)
        assert timing.latency_ps > 0

    def test_word_partition_of_narrow_entry(self):
        narrow = ArrayModel("narrow", entries=64, bits_per_entry=2, dies=4)
        timing = narrow.evaluate(PartitionMode.WORD_PARTITIONED)
        assert timing.energy_full_pj > 0


class TestModeRelationships:
    @pytest.fixture(scope="class")
    def rf(self):
        return ArrayModel("rf", entries=96, bits_per_entry=64,
                          read_ports=8, write_ports=4)

    def test_entry_stacked_fastest_for_tall_arrays(self):
        tall = ArrayModel("tall", entries=1024, bits_per_entry=32)
        entry = tall.evaluate(PartitionMode.ENTRY_STACKED).latency_ps
        word = tall.evaluate(PartitionMode.WORD_PARTITIONED).latency_ps
        assert entry < word

    def test_word_partition_best_gating_energy(self, rf):
        word = rf.evaluate(PartitionMode.WORD_PARTITIONED)
        entry = rf.evaluate(PartitionMode.ENTRY_STACKED)
        assert (word.energy_top_pj / word.energy_full_pj
                < entry.energy_top_pj / entry.energy_full_pj)

    def test_area_independent_of_mode(self, rf):
        """Total silicon is mode-independent (same cells, folded)."""
        planar = rf.evaluate(PartitionMode.PLANAR).area_mm2
        for mode in (PartitionMode.WORD_PARTITIONED, PartitionMode.ENTRY_STACKED):
            stacked = rf.evaluate(mode).area_mm2
            assert stacked == pytest.approx(planar, rel=0.35)
