"""Tests for the per-block models — the Table 2 reproduction targets."""

import pytest

from repro.circuits.arrays import PartitionMode
from repro.circuits.blocks import build_block_models, table2

EXPECTED_BLOCKS = {
    "int_adder", "alu_bypass_loop", "wakeup_select_loop", "rename",
    "bypass", "fpu", "register_file", "rob", "l1_icache", "l1_dcache",
    "l2_cache", "itlb", "dtlb", "btb", "ibtb", "dir_predictor",
    "load_queue", "store_queue", "fetch_queue",
}


class TestBlockSet:
    def test_all_blocks_present(self, blocks):
        assert set(blocks) == EXPECTED_BLOCKS

    def test_all_latencies_positive(self, blocks):
        for model in blocks.values():
            assert model.timing.latency_2d_ps > 0
            assert model.timing.latency_3d_ps > 0

    def test_all_3d_latencies_improve(self, blocks):
        for name, model in blocks.items():
            assert model.timing.improvement > 0, name

    def test_energy_top_not_above_full(self, blocks):
        for name, model in blocks.items():
            assert model.timing.energy_3d_top_pj <= model.timing.energy_3d_pj + 1e-9, name


class TestPaperCalibration:
    """The bold rows of Table 2 and the surrounding claims."""

    def test_wakeup_select_improvement(self, blocks):
        """Paper: 32% improvement in the wakeup-select loop."""
        assert blocks["wakeup_select_loop"].timing.improvement == pytest.approx(0.32, abs=0.04)

    def test_alu_bypass_improvement(self, blocks):
        """Paper: 36% improvement in the ALU+bypass loop."""
        assert blocks["alu_bypass_loop"].timing.improvement == pytest.approx(0.36, abs=0.04)

    def test_adder_improves_little(self, blocks):
        """Paper: the adder accounts for only ~3 points of the 36%."""
        adder = blocks["int_adder"].timing
        loop = blocks["alu_bypass_loop"].timing
        adder_contribution = (adder.latency_2d_ps - adder.latency_3d_ps) / loop.latency_2d_ps
        assert adder_contribution < 0.10

    def test_planar_cycle_near_2_66ghz(self, blocks):
        cycle = max(
            blocks["wakeup_select_loop"].timing.latency_2d_ps,
            blocks["alu_bypass_loop"].timing.latency_2d_ps,
        )
        assert 1e3 / cycle == pytest.approx(2.66, rel=0.03)

    def test_large_arrays_gain_most(self, blocks):
        assert (blocks["l2_cache"].timing.improvement
                > blocks["load_queue"].timing.improvement)

    def test_word_partitioned_blocks_can_gate(self, blocks):
        for name in ("register_file", "rob", "l1_dcache", "btb"):
            timing = blocks[name].timing
            assert timing.mode is PartitionMode.WORD_PARTITIONED
            assert timing.energy_3d_top_pj < 0.6 * timing.energy_3d_pj

    def test_bypass_energy_collapses_in_3d(self, blocks):
        """The wire-dominated bypass network gains the most energy."""
        timing = blocks["bypass"].timing
        assert timing.energy_3d_pj < 0.4 * timing.energy_2d_pj


class TestRendering:
    def test_table2_text(self, blocks):
        text = table2(blocks)
        assert "wakeup_select_loop" in text
        assert "frequency-determining" in text
