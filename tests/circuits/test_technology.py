"""Tests for the technology parameter set."""

import pytest

from repro.circuits.technology import TECH_65NM, Technology


class TestTechnology:
    def test_nominal_values_sane(self):
        tech = TECH_65NM
        assert 10.0 <= tech.fo4_delay_ps <= 30.0
        assert 0.5 <= tech.vdd <= 1.5
        assert tech.d2d_via_delay_ps < tech.fo4_delay_ps, \
            "paper: d2d via delay is under one FO4"

    def test_via_pitches_match_paper(self):
        assert TECH_65NM.f2f_via_pitch_um == pytest.approx(1.0)
        assert TECH_65NM.b2b_via_pitch_um == pytest.approx(2.0)

    def test_interface_distances_match_paper(self):
        assert TECH_65NM.f2f_distance_um == pytest.approx(5.0)
        assert TECH_65NM.b2b_distance_um == pytest.approx(20.0)

    def test_wire_rc_coefficient(self):
        tech = TECH_65NM
        expected = 0.38 * tech.wire_r_per_um * tech.wire_c_per_um * 1e-3
        assert tech.wire_rc_ps_per_um2 == pytest.approx(expected)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            TECH_65NM.vdd = 0.9

    def test_baseline_cycle_in_fo4(self):
        """The 2.66 GHz baseline cycle should be ~20-25 FO4 (Core 2-class)."""
        cycle_ps = 1e3 / 2.66
        fo4 = cycle_ps / TECH_65NM.fo4_delay_ps
        assert 18 <= fo4 <= 28
