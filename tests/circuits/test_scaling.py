"""Tests for the technology scaling study."""

import pytest

from repro.circuits.scaling import (
    SCALING_NODES,
    run_scaling,
    scaled_technology,
)
from repro.circuits.technology import TECH_65NM


class TestScaledTechnology:
    def test_identity_at_65(self):
        tech = scaled_technology(65.0)
        assert tech.fo4_delay_ps == pytest.approx(TECH_65NM.fo4_delay_ps)
        assert tech.wire_r_per_um == pytest.approx(TECH_65NM.wire_r_per_um)

    def test_smaller_node_faster_gates(self):
        tech45 = scaled_technology(45.0)
        assert tech45.fo4_delay_ps < TECH_65NM.fo4_delay_ps

    def test_smaller_node_worse_wires(self):
        tech45 = scaled_technology(45.0)
        assert tech45.wire_r_per_um > TECH_65NM.wire_r_per_um
        assert tech45.repeated_wire_ps_per_mm > TECH_65NM.repeated_wire_ps_per_mm

    def test_geometry_scales(self):
        tech45 = scaled_technology(45.0)
        assert tech45.sram_cell_w_um == pytest.approx(
            TECH_65NM.sram_cell_w_um * 45 / 65
        )

    def test_rejects_bad_node(self):
        with pytest.raises(ValueError):
            scaled_technology(0.0)


class TestScalingStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return run_scaling()

    def test_all_nodes(self, result):
        assert [p.node_nm for p in result.points] == list(SCALING_NODES)

    def test_gain_grows_at_smaller_nodes(self, result):
        """The paper's wire-scaling motivation: 3D gains more per node."""
        gains = result.gain_by_node()
        assert gains[45.0] > gains[65.0] > gains[90.0]

    def test_65nm_matches_paper_point(self, result):
        gains = result.gain_by_node()
        assert 0.40 <= gains[65.0] <= 0.55

    def test_format(self, result):
        text = result.format()
        assert "node" in text
        assert "65n" in text
