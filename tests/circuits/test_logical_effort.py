"""Tests for the gate-chain delay helpers."""

import pytest

from repro.circuits.logical_effort import (
    decoder_depth_fo4,
    fo4_ps,
    gate_chain_delay_ps,
    mux_depth_fo4,
)
from repro.circuits.technology import TECH_65NM


class TestGateChain:
    def test_simple_depth(self):
        assert gate_chain_delay_ps(10.0) == pytest.approx(10.0 * TECH_65NM.fo4_delay_ps)

    def test_fanout_adds_stages(self):
        base = gate_chain_delay_ps(4.0, fanout=1.0)
        loaded = gate_chain_delay_ps(4.0, fanout=16.0)
        # log4(16) = 2 extra FO4 stages.
        assert loaded == pytest.approx(base + 2 * TECH_65NM.fo4_delay_ps)

    def test_negative_depth_rejected(self):
        with pytest.raises(ValueError):
            gate_chain_delay_ps(-1.0)

    def test_fanout_below_one_rejected(self):
        with pytest.raises(ValueError):
            gate_chain_delay_ps(1.0, fanout=0.5)

    def test_fo4_matches_technology(self):
        assert fo4_ps() == TECH_65NM.fo4_delay_ps


class TestStructureDepths:
    def test_decoder_grows_with_entries(self):
        assert decoder_depth_fo4(256) > decoder_depth_fo4(32)

    def test_decoder_tiny(self):
        assert decoder_depth_fo4(1) == 1.0

    def test_mux_grows_with_ways(self):
        assert mux_depth_fo4(16) > mux_depth_fo4(2)

    def test_mux_degenerate(self):
        assert mux_depth_fo4(1) == 0.5
