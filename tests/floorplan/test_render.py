"""Tests for floorplan rendering and the Figure 7 experiment."""

import pytest

from repro.experiments.figure7 import run_figure7
from repro.floorplan.planar import planar_floorplan
from repro.floorplan.render import area_summary, render_die_ascii


class TestRenderDie:
    def test_renders_frame_and_legend(self):
        text = render_die_ascii(planar_floorplan(), die=0, width_chars=40)
        lines = text.splitlines()
        assert lines[0].startswith("+")
        assert "legend:" in text
        assert "l2_cache" in text

    def test_every_block_appears(self):
        plan = planar_floorplan()
        text = render_die_ascii(plan, die=0, width_chars=60)
        body = text.split("legend:")[0]
        # Count distinct non-frame characters: should match block count.
        used = {c for line in body.splitlines() for c in line.strip("+|-")}
        used.discard(" ")
        assert len(used) == len(plan.blocks_on_die(0))

    def test_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            render_die_ascii(planar_floorplan(), width_chars=4)

    def test_rejects_empty_die(self):
        plan = planar_floorplan()
        with pytest.raises(ValueError):
            render_die_ascii(plan, die=0 + 99)


class TestAreaSummary:
    def test_mentions_dims(self):
        text = area_summary(planar_floorplan())
        assert "mm^2" in text
        assert "die 0" in text


class TestFigure7:
    def test_footprint_reduction(self):
        result = run_figure7()
        assert result.footprint_reduction == pytest.approx(4.0, abs=0.2)

    def test_format(self):
        assert "Figure 7" in run_figure7().format()
