"""Tests for floorplan geometry and the 2D/3D chip layouts."""

import pytest

from repro.floorplan.core_layout import CORE_ROWS, FILLER_BLOCKS, layout_core
from repro.floorplan.geometry import Block, Floorplan, Rect
from repro.floorplan.planar import CORE_HEIGHT_MM, CORE_WIDTH_MM, planar_floorplan
from repro.floorplan.stacked import stacked_floorplan


class TestRect:
    def test_area(self):
        assert Rect(0, 0, 2, 3).area_mm2 == 6

    def test_center(self):
        assert Rect(1, 1, 2, 2).center == (2, 2)

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Rect(0, 0, 0, 1)

    def test_overlap_detection(self):
        a = Rect(0, 0, 2, 2)
        assert a.overlaps(Rect(1, 1, 2, 2))
        assert not a.overlaps(Rect(2, 0, 1, 1))  # shares an edge only
        assert not a.overlaps(Rect(5, 5, 1, 1))

    def test_overlap_tolerates_fp_noise(self):
        a = Rect(0, 0, 1.0000000000000002, 1)
        b = Rect(1, 0, 1, 1)
        assert not a.overlaps(b)


class TestFloorplanContainer:
    def test_add_and_find(self):
        plan = Floorplan(name="t", width_mm=10, height_mm=10, dies=2)
        plan.add(Block("x", Rect(0, 0, 1, 1), die=1))
        assert plan.find("x").die == 1
        assert plan.find("x", die=1).name == "x"

    def test_find_missing(self):
        plan = Floorplan(name="t", width_mm=10, height_mm=10, dies=1)
        with pytest.raises(KeyError):
            plan.find("nope")

    def test_rejects_bad_die(self):
        plan = Floorplan(name="t", width_mm=10, height_mm=10, dies=1)
        with pytest.raises(ValueError):
            plan.add(Block("x", Rect(0, 0, 1, 1), die=3))

    def test_validate_catches_out_of_bounds(self):
        plan = Floorplan(name="t", width_mm=5, height_mm=5, dies=1)
        plan.add(Block("x", Rect(4, 4, 2, 2)))
        with pytest.raises(ValueError):
            plan.validate()

    def test_validate_catches_overlap(self):
        plan = Floorplan(name="t", width_mm=5, height_mm=5, dies=1)
        plan.add(Block("x", Rect(0, 0, 2, 2)))
        plan.add(Block("y", Rect(1, 1, 2, 2)))
        with pytest.raises(ValueError):
            plan.validate()


class TestCoreLayout:
    def test_row_fractions_sum_to_one(self):
        total_height = sum(h for h, _ in CORE_ROWS)
        assert total_height == pytest.approx(1.0)
        for _, row in CORE_ROWS:
            assert sum(w for _, w in row) == pytest.approx(1.0)

    def test_layout_covers_core(self):
        blocks = layout_core("c.", 0, 0, 5.0, 4.4)
        assert sum(b.area_mm2 for b in blocks) == pytest.approx(5.0 * 4.4)

    def test_prefixing(self):
        blocks = layout_core("core7.", 0, 0, 1, 1)
        assert all(b.name.startswith("core7.") for b in blocks)

    def test_contains_activity_modules(self):
        names = {b.name.split(".", 1)[1] for b in layout_core("c.", 0, 0, 1, 1)}
        for module in ("scheduler", "register_file", "l1_dcache", "bypass",
                       "alu", "rob", "btb", "dir_predictor"):
            assert module in names

    def test_fillers_are_known(self):
        names = {b.name.split(".", 1)[1] for b in layout_core("c.", 0, 0, 1, 1)}
        for filler in FILLER_BLOCKS:
            assert filler in names


class TestChipFloorplans:
    def test_planar_validates(self):
        planar_floorplan().validate()

    def test_planar_has_two_cores_and_l2(self):
        plan = planar_floorplan()
        assert plan.find("core0.scheduler")
        assert plan.find("core1.scheduler")
        assert plan.find("l2_cache")
        assert plan.dies == 1

    def test_single_core_variant(self):
        plan = planar_floorplan(core_count=1)
        with pytest.raises(KeyError):
            plan.find("core1.scheduler")

    def test_stacked_validates(self):
        stacked_floorplan().validate()

    def test_stacked_replicates_blocks_per_die(self):
        plan = stacked_floorplan()
        for die in range(4):
            assert plan.find("core0.register_file", die=die)
            assert plan.find("l2_cache", die=die)

    def test_stacked_footprint_quartered(self):
        planar = planar_floorplan()
        stacked = stacked_floorplan()
        planar_area = planar.width_mm * planar.height_mm
        stacked_area = stacked.width_mm * stacked.height_mm
        assert stacked_area == pytest.approx(planar_area / 4)

    def test_blocks_vertically_aligned(self):
        """A partitioned block occupies the same (x, y) region on all dies."""
        plan = stacked_floorplan()
        rects = [plan.find("core0.scheduler", die=d).rect for d in range(4)]
        assert all(r == rects[0] for r in rects)

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            planar_floorplan(core_count=0)
        with pytest.raises(ValueError):
            stacked_floorplan(core_count=0)
