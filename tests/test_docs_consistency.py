"""Docs-vs-code consistency: the README and DESIGN must not drift."""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestReadme:
    @pytest.fixture(scope="class")
    def readme(self):
        return (REPO / "README.md").read_text(encoding="utf-8")

    def test_cli_commands_exist(self, readme):
        from repro.cli import build_parser
        parser = build_parser()
        sub = next(a for a in parser._actions if a.dest == "command")
        for command in re.findall(r"python -m repro (\w+)", readme):
            assert command in sub.choices, f"README references unknown command {command}"

    def test_example_files_exist(self, readme):
        for script in re.findall(r"python (examples/\w+\.py)", readme):
            assert (REPO / script).exists(), script

    def test_quickstart_snippet_runs(self, readme):
        """The README's quickstart block must execute as written."""
        match = re.search(r"```python\n(.*?)```", readme, re.DOTALL)
        assert match, "README lost its quickstart snippet"
        code = match.group(1).replace("20_000", "3_000").replace("6_000", "900")
        namespace: dict = {}
        exec(compile(code, "README-quickstart", "exec"), namespace)


class TestDesign:
    @pytest.fixture(scope="class")
    def design(self):
        return (REPO / "DESIGN.md").read_text(encoding="utf-8")

    def test_bench_targets_exist(self, design):
        for target in set(re.findall(r"test_bench_\w+", design)):
            matches = list((REPO / "benchmarks").glob(f"{target}*.py"))
            direct = (REPO / "benchmarks" / f"{target}.py").exists()
            assert direct or matches, f"DESIGN references missing bench {target}"

    def test_modules_exist(self, design):
        for module in set(re.findall(r"`(experiments/\w+\.py|circuits/\w+\.py|"
                                     r"core/\w+\.py|thermal/\w+\.py|"
                                     r"workloads/\w+\.py|isa/\w+\.py)`", design)):
            assert (REPO / "src" / "repro" / module).exists(), module


class TestTopLevelDocs:
    def test_all_docs_present(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md", "ARCHITECTURE.md"):
            path = REPO / name
            assert path.exists(), name
            assert len(path.read_text(encoding="utf-8")) > 500, name
