"""Shared fixtures for the test suite.

Expensive artifacts (traces, simulation runs, block models) are session
scoped: the suite has hundreds of tests and must stay fast.
"""

from __future__ import annotations

import pytest

from repro.circuits.blocks import build_block_models
from repro.cpu.config import baseline_config, full_3d_config, thermal_herding_config
from repro.cpu.pipeline import simulate
from repro.workloads.suite import generate

#: Trace length used by session-scoped simulation fixtures.
TRACE_LENGTH = 8_000
WARMUP = 2_000


@pytest.fixture(scope="session")
def blocks():
    return build_block_models()


@pytest.fixture(scope="session")
def mpeg2_trace():
    return generate("mpeg2", length=TRACE_LENGTH)


@pytest.fixture(scope="session")
def yacr2_trace():
    return generate("yacr2", length=TRACE_LENGTH)


@pytest.fixture(scope="session")
def mcf_trace():
    return generate("mcf", length=TRACE_LENGTH)


@pytest.fixture(scope="session")
def base_run(mpeg2_trace):
    return simulate(mpeg2_trace, baseline_config(), warmup=WARMUP)


@pytest.fixture(scope="session")
def th_run(mpeg2_trace):
    return simulate(mpeg2_trace, thermal_herding_config(), warmup=WARMUP)


@pytest.fixture(scope="session")
def full_3d_run(mpeg2_trace):
    return simulate(mpeg2_trace, full_3d_config(), warmup=WARMUP)
