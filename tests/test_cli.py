"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions if a.dest == "command")
        expected = {"table2", "figure8", "figure9", "figure10", "density",
                    "width", "dvfs", "roadmap", "report", "simulate",
                    "trace", "list", "sensitivity", "transient", "stacking",
                    "mechanisms", "cache", "metrics"}
        assert expected <= set(sub.choices)

    def test_experiment_commands_take_jobs(self):
        args = build_parser().parse_args(["figure8", "--fast", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["report", "--fast"])
        assert args.jobs is None

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "GHz" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mpeg2" in out
        assert "SPECint2000" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "adpcm", "--length", "3000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_simulate_unknown_config(self, capsys):
        assert main(["simulate", "adpcm", "--config", "Warp9"]) == 2

    def test_cache_info_and_clear(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out

    def test_metrics_snapshot_to_stdout(self, tmp_path, capsys, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["metrics"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["schema"] == 1
        assert snapshot["cache"]["enabled"] is True
        assert snapshot["cache"]["entries"] == 0
        assert "counters" in snapshot["cache"]
        assert "factorizations" in snapshot

    def test_metrics_snapshot_to_file(self, tmp_path, capsys, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        out_file = tmp_path / "metrics.json"
        assert main(["metrics", "--out", str(out_file)]) == 0
        snapshot = json.loads(out_file.read_text(encoding="utf-8"))
        assert snapshot["cache"]["size_bytes"] == 0

    def test_metrics_with_cache_disabled(self, capsys, monkeypatch):
        import json

        monkeypatch.setenv("REPRO_CACHE", "0")
        assert main(["metrics"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["cache"] == {"enabled": False}

    def test_trace_roundtrip(self, tmp_path, capsys):
        output = tmp_path / "x.jsonl.gz"
        assert main(["trace", "adpcm", "--length", "500", "-o", str(output)]) == 0
        assert output.exists()
        from repro.isa.serialization import load_trace
        assert len(load_trace(output)) == 500
