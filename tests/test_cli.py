"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        sub = next(a for a in parser._actions if a.dest == "command")
        expected = {"table2", "figure8", "figure9", "figure10", "density",
                    "width", "dvfs", "roadmap", "report", "simulate",
                    "trace", "list", "sensitivity", "transient", "stacking",
                    "mechanisms", "cache"}
        assert expected <= set(sub.choices)

    def test_experiment_commands_take_jobs(self):
        args = build_parser().parse_args(["figure8", "--fast", "--jobs", "4"])
        assert args.jobs == 4
        args = build_parser().parse_args(["report", "--fast"])
        assert args.jobs is None

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "GHz" in out

    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "mpeg2" in out
        assert "SPECint2000" in out

    def test_simulate(self, capsys):
        assert main(["simulate", "adpcm", "--length", "3000"]) == 0
        out = capsys.readouterr().out
        assert "IPC" in out

    def test_simulate_unknown_config(self, capsys):
        assert main(["simulate", "adpcm", "--config", "Warp9"]) == 2

    def test_cache_info_and_clear(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["cache"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out
        assert main(["cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out

    def test_trace_roundtrip(self, tmp_path, capsys):
        output = tmp_path / "x.jsonl.gz"
        assert main(["trace", "adpcm", "--length", "500", "-o", str(output)]) == 0
        assert output.exists()
        from repro.isa.serialization import load_trace
        assert len(load_trace(output)) == 500
