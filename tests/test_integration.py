"""End-to-end integration tests across the whole pipeline.

These check the cross-package contracts: trace -> timing -> activity ->
power -> thermal, and the paper's qualitative orderings at small scale.
"""

import pytest

from repro.core.activity import NUM_DIES
from repro.cpu.config import baseline_config, full_3d_config
from repro.cpu.pipeline import simulate
from repro.experiments.context import CONFIG_STACKS
from repro.floorplan import planar_floorplan, stacked_floorplan
from repro.power.model import PowerModel, StackKind, calibrate_activity_scale
from repro.thermal import ThermalSolver, build_power_map, planar_stack, rasterize, stacked_3d_stack
from repro.workloads import generate


@pytest.fixture(scope="module")
def pipeline_artifacts(mpeg2_trace, base_run, full_3d_run):
    scale = calibrate_activity_scale(base_run)
    model = PowerModel(activity_scale=scale)
    return {
        "model": model,
        "p2d": model.evaluate(base_run, StackKind.PLANAR_2D),
        "p3d": model.evaluate(full_3d_run, StackKind.STACKED_3D),
    }


class TestActivityToPowerContract:
    def test_every_activity_module_priced(self, base_run, pipeline_artifacts):
        """Every module the simulator records must map to a block energy."""
        priced = set(pipeline_artifacts["p2d"].modules)
        recorded = {
            name for name, act in base_run.activity.modules().items()
            if act.total and name != "dram"
        }
        assert recorded == priced

    def test_th_activity_also_priced(self, full_3d_run, pipeline_artifacts):
        priced = set(pipeline_artifacts["p3d"].modules)
        recorded = {
            name for name, act in full_3d_run.activity.modules().items()
            if act.total and name != "dram"
        }
        assert recorded == priced


class TestPowerToThermalContract:
    def test_floorplan_covers_power_modules(self, pipeline_artifacts):
        """Every priced module has a floorplan block (or spreads as misc)."""
        plan = stacked_floorplan()
        names = {b.name for b in plan.blocks}
        missing = [
            module for module in pipeline_artifacts["p3d"].modules
            if module != "l2_cache" and f"core0.{module}" not in names
        ]
        assert missing == []

    def test_thermal_chain_runs(self, pipeline_artifacts):
        plan = stacked_floorplan()
        solver = ThermalSolver(stacked_3d_stack(), plan, nx=32, ny=32)
        watts = build_power_map(plan, [pipeline_artifacts["p3d"]] * 2)
        ny, nx = solver.chip_grid_shape()
        result = solver.solve(rasterize(plan, watts, nx, ny))
        assert result.peak_temperature > solver.stack.ambient_k


class TestPaperOrderings:
    def test_speedup_and_power_together(self, base_run, full_3d_run, pipeline_artifacts):
        """The headline: faster AND lower power simultaneously."""
        assert full_3d_run.ipns > base_run.ipns
        assert (pipeline_artifacts["p3d"].total_watts
                < pipeline_artifacts["p2d"].total_watts)

    def test_memory_bound_benchmark_gains_less(self):
        mcf = generate("mcf", length=6000)
        susan = generate("susan", length=6000)
        speedups = {}
        for name, trace in (("mcf", mcf), ("susan", susan)):
            base = simulate(trace, baseline_config(), warmup=2000)
            full = simulate(trace, full_3d_config(), warmup=2000)
            speedups[name] = full.ipns / base.ipns
        assert speedups["mcf"] < speedups["susan"]

    def test_config_stack_map_consistent(self):
        assert CONFIG_STACKS["Base"] is StackKind.PLANAR_2D
        assert CONFIG_STACKS["3D"] is StackKind.STACKED_3D


class TestDieAccounting:
    def test_th_run_herds_activity_upward(self, full_3d_run):
        """Across word-partitioned modules, die 0 sees the most activity."""
        for name in ("register_file", "l1_dcache", "bypass"):
            activity = full_3d_run.activity.module(name)
            assert activity.per_die[0] >= activity.per_die[NUM_DIES - 1], name

    def test_power_follows_herding(self, pipeline_artifacts):
        rf = pipeline_artifacts["p3d"].modules["register_file"]
        assert rf.per_die[0] > rf.per_die[3]
